package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"octopocs/internal/asm"
	"octopocs/internal/core"
	"octopocs/internal/corpus"
	"octopocs/internal/faultinject"
	"octopocs/internal/journal"
)

// maxSubmitBytes bounds a submission body: two assembled MIR programs plus
// a poc comfortably fit in single-digit megabytes.
const maxSubmitBytes = 16 << 20

// SubmitRequest is the POST /v1/jobs body. A pair is given either inline —
// assembled MIR text for S and T, poc bytes, and the shared function set ℓ —
// or as a built-in Table II corpus row via corpus_idx.
type SubmitRequest struct {
	// Name labels the pair in reports; defaults to "s->t".
	Name string `json:"name,omitempty"`
	// S and T are assembled MIR program texts (see internal/asm).
	S string `json:"s,omitempty"`
	T string `json:"t,omitempty"`
	// PoC is the crashing input for S (JSON base64).
	PoC []byte `json:"poc,omitempty"`
	// Lib is ℓ, the shared function set.
	Lib []string `json:"lib,omitempty"`
	// CtxArgs lists ep parameter indices carrying semantic context.
	CtxArgs []int `json:"ctx_args,omitempty"`
	// InputSize overrides the symbolic poc' size (0 = default).
	InputSize int `json:"input_size,omitempty"`
	// MaxSteps overrides the per-run instruction budget (0 = default).
	MaxSteps int64 `json:"max_steps,omitempty"`
	// CorpusIdx submits a built-in corpus row instead: the Table II pairs
	// (1-15) or the static-prune pairs (16-17).
	CorpusIdx int `json:"corpus_idx,omitempty"`
	// Static overrides the service-wide static-prune setting for this job:
	// true forces the pre-P2 static analysis (verifier, constant folding,
	// dead-block pruning, statically-unreachable short-circuit), false
	// forces it off, absent inherits the pipeline configuration.
	Static *bool `json:"static,omitempty"`
}

// BuildPair converts the request into a verification task.
func (r *SubmitRequest) BuildPair() (*core.Pair, error) {
	if r.CorpusIdx != 0 {
		spec := corpus.ByIdx(r.CorpusIdx)
		if spec == nil {
			return nil, fmt.Errorf("no corpus pair with index %d (valid: 1-17)", r.CorpusIdx)
		}
		pair := spec.Pair
		if r.Static != nil {
			// Corpus specs are shared; copy before attaching the per-job
			// override.
			cp := *pair
			cp.StaticPrune = r.Static
			pair = &cp
		}
		return pair, nil
	}
	if r.S == "" || r.T == "" {
		return nil, errors.New("s and t program texts are required (or corpus_idx)")
	}
	if len(r.PoC) == 0 {
		return nil, errors.New("poc is required")
	}
	if len(r.Lib) == 0 {
		return nil, errors.New("lib (the shared function set) is required")
	}
	sProg, err := asm.Parse(r.S)
	if err != nil {
		return nil, fmt.Errorf("parse s: %w", err)
	}
	tProg, err := asm.Parse(r.T)
	if err != nil {
		return nil, fmt.Errorf("parse t: %w", err)
	}
	lib := make(map[string]bool, len(r.Lib))
	for _, fn := range r.Lib {
		lib[fn] = true
	}
	name := r.Name
	if name == "" {
		name = fmt.Sprintf("%s->%s", sProg.Name, tProg.Name)
	}
	return &core.Pair{
		Name:        name,
		S:           sProg,
		T:           tProg,
		PoC:         r.PoC,
		Lib:         lib,
		CtxArgs:     r.CtxArgs,
		InputSize:   r.InputSize,
		MaxSteps:    r.MaxSteps,
		StaticPrune: r.Static,
	}, nil
}

// ReportResponse is the GET /v1/jobs/{id}/report body.
type ReportResponse struct {
	JobStatus
	Report *core.Report `json:"report,omitempty"`
}

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs              submit a pair (?wait=1 blocks until done)
//	GET  /v1/jobs              list all jobs
//	GET  /v1/jobs/{id}         job status
//	GET  /v1/jobs/{id}/report  full verification report
//	GET  /v1/jobs/{id}/poc     reformed PoC bytes
//	GET  /v1/jobs/{id}/trace   phase/sub-step span tree (JSON)
//	GET  /v1/jobs/{id}/events  provenance journal (?after=N pages; ?stream=1
//	                           or Accept: text/event-stream follows live)
//	POST /v1/jobs/{id}/cancel  cooperative cancellation
//	POST /v1/batches           submit many jobs atomically, deduplicated
//	GET  /v1/batches           list all batches
//	GET  /v1/batches/{id}      batch status with per-item job mapping
//	POST /v1/scan              batch clone scan (?wait=1 blocks until done)
//	GET  /v1/scans             list all scans
//	GET  /v1/scans/{id}        scan status with per-candidate verdicts
//	GET  /v1/stats             queue/worker/latency/cache/store counters
//	GET  /metrics              Prometheus text exposition
//	GET  /healthz              liveness (503 while draining)
//
// Backpressure contract: a full queue or a saturated artifact store answers
// submissions (jobs and batches alike) with 429 and a Retry-After header
// carrying the advised backoff in seconds; clients should wait at least
// that long before resubmitting.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "draining\n")
			return
		}
		io.WriteString(w, "ok\n")
	})
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Jobs())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", s.withJob(func(w http.ResponseWriter, r *http.Request, j *Job) {
		writeJSON(w, http.StatusOK, j.Snapshot())
	}))
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.withJob(s.handleReport))
	mux.HandleFunc("GET /v1/jobs/{id}/poc", s.withJob(handlePoC))
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.withJob(s.handleTrace))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.withJob(s.handleEvents))
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.withJob(func(w http.ResponseWriter, r *http.Request, j *Job) {
		j.Cancel()
		writeJSON(w, http.StatusOK, j.Snapshot())
	}))
	mux.HandleFunc("POST /v1/batches", s.handleBatch)
	mux.HandleFunc("GET /v1/batches", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Batches())
	})
	mux.HandleFunc("GET /v1/batches/{id}", func(w http.ResponseWriter, r *http.Request) {
		b, ok := s.BatchByID(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("unknown batch %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, b.Snapshot())
	})
	mux.HandleFunc("POST /v1/scan", s.handleScan)
	mux.HandleFunc("GET /v1/scans", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Scans())
	})
	mux.HandleFunc("GET /v1/scans/{id}", func(w http.ResponseWriter, r *http.Request) {
		sc, ok := s.ScanByID(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("unknown scan %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, sc.Snapshot())
	})
	return s.recoverMiddleware(mux)
}

// recoverMiddleware is the HTTP-layer panic containment boundary: a panic
// in any handler (or an injected one) answers 500 and keeps the server
// alive instead of killing the connection's serve goroutine with a stack
// dump. Panics after the handler started writing cannot be converted to a
// clean 500 — the reply is already on the wire — but they are still
// contained and counted.
func (s *Service) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.faults().CountRecovered()
				s.log.Error("panic recovered in HTTP handler",
					"method", r.Method, "path", r.URL.Path, "panic", fmt.Sprint(rec))
				writeErr(w, http.StatusInternalServerError,
					errors.New("internal error: handler panicked"))
			}
		}()
		s.faults().Panic(faultinject.ServiceHandlerPanic)
		next.ServeHTTP(w, r)
	})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxSubmitBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	pair, err := req.BuildPair()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.Submit(pair)
	if err != nil {
		s.writeSubmitErr(w, err)
		return
	}
	if wait := r.URL.Query().Get("wait"); wait == "1" || wait == "true" {
		// Block until the job finishes (or the client goes away; the job
		// itself keeps running — cancellation is explicit).
		if _, err := job.Wait(r.Context()); err != nil {
			writeErr(w, http.StatusRequestTimeout, err)
			return
		}
		writeJSON(w, http.StatusOK, job.Snapshot())
		return
	}
	writeJSON(w, http.StatusAccepted, job.Snapshot())
}

// writeSubmitErr maps a submission error onto the backpressure contract:
// queue-full and store-saturation reject with 429 plus a Retry-After header
// (whole seconds, rounded up) telling the client how long to back off;
// shutdown answers 503.
func (s *Service) writeSubmitErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrSaturated):
		secs := int64(s.RetryAfter().Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		writeErr(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrShutdown):
		writeErr(w, http.StatusServiceUnavailable, err)
	default:
		writeErr(w, http.StatusInternalServerError, err)
	}
}

// handleBatch answers POST /v1/batches: every item is validated first (any
// bad item fails the whole request with 400 before admission), then the
// batch is admitted atomically — all unique jobs enqueued, or a single 429
// with Retry-After.
func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxSubmitBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(req.Jobs) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("jobs must not be empty"))
		return
	}
	if len(req.Jobs) > maxBatchJobs {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d jobs exceeds the %d-job limit", len(req.Jobs), maxBatchJobs))
		return
	}
	pairs := make([]*core.Pair, len(req.Jobs))
	for i := range req.Jobs {
		pair, err := req.Jobs[i].BuildPair()
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("job %d: %w", i, err))
			return
		}
		pairs[i] = pair
	}
	b, err := s.SubmitBatch(req.Name, pairs)
	if err != nil {
		s.writeSubmitErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, b.Snapshot())
}

// handleScan answers POST /v1/scan: retrieval runs synchronously (bad
// requests fail with 400 before anything is enqueued), candidate
// verifications fan out on the job queue. With ?wait=1 the reply blocks
// until every candidate is resolved.
func (s *Service) handleScan(w http.ResponseWriter, r *http.Request) {
	var req ScanRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxSubmitBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	sc, err := s.StartScan(&req)
	switch {
	case errors.Is(err, ErrShutdown):
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if wait := r.URL.Query().Get("wait"); wait == "1" || wait == "true" {
		if err := sc.Wait(r.Context()); err != nil {
			writeErr(w, http.StatusRequestTimeout, err)
			return
		}
		writeJSON(w, http.StatusOK, sc.Snapshot())
		return
	}
	writeJSON(w, http.StatusAccepted, sc.Snapshot())
}

func (s *Service) handleReport(w http.ResponseWriter, r *http.Request, j *Job) {
	resp := ReportResponse{JobStatus: j.Snapshot(), Report: j.Report()}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request, j *Job) {
	tr, ok := s.Trace(j.ID())
	if !ok {
		writeErr(w, http.StatusNotFound,
			errors.New("no trace retained for this job (tracing disabled, job still queued, or trace evicted)"))
		return
	}
	writeJSON(w, http.StatusOK, tr.Snapshot())
}

// EventsResponse is the GET /v1/jobs/{id}/events body (JSON mode). Next is
// the cursor for the follow-up ?after= request: the Seq of the last event
// returned, or the request's own cursor when nothing new arrived.
type EventsResponse struct {
	ID      string          `json:"id"`
	State   string          `json:"state"`
	Next    uint64          `json:"next"`
	Dropped uint64          `json:"dropped"`
	Events  []journal.Event `json:"events"`
}

var errNoJournal = errors.New(
	"no journal for this job (journaling disabled or artifact evicted)")

// handleEvents answers GET /v1/jobs/{id}/events: one JSON page of journal
// events after the ?after= cursor, or — with ?stream=1 or an SSE Accept
// header — a live text/event-stream that follows the job to completion.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request, j *Job) {
	var after uint64
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad after cursor %q: %w", v, err))
			return
		}
		after = n
	}
	if q := r.URL.Query().Get("stream"); q == "1" || q == "true" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.streamEvents(w, r, j, after)
		return
	}
	rec, events, ok := s.jobJournal(j)
	if !ok {
		writeErr(w, http.StatusNotFound, errNoJournal)
		return
	}
	if rec != nil {
		events = rec.EventsAfter(after)
	} else {
		events = eventsAfter(events, after)
	}
	next := after
	if n := len(events); n > 0 {
		next = events[n-1].Seq
	}
	writeJSON(w, http.StatusOK, EventsResponse{
		ID:      j.ID(),
		State:   j.State().String(),
		Next:    next,
		Dropped: j.Snapshot().JournalDropped,
		Events:  events,
	})
}

// streamEvents serves the journal as server-sent events: every event is one
// `data:` frame of its JSON encoding, and a final `event: done` frame
// carries the job's terminal state. The Updated channel is taken before
// each drain so no append between reads is missed.
func (s *Service) streamEvents(w http.ResponseWriter, r *http.Request, j *Job, after uint64) {
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		writeErr(w, http.StatusNotImplemented, errors.New("response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	emit := func(events []journal.Event) {
		for _, ev := range events {
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "data: %s\n\n", data)
			after = ev.Seq
		}
		if len(events) > 0 {
			fl.Flush()
		}
	}
	done := func() {
		fmt.Fprintf(w, "event: done\ndata: {\"state\":%q}\n\n", j.State().String())
		fl.Flush()
	}
	for {
		rec, events, ok := s.jobJournal(j)
		if !ok {
			// Disabled or evicted: nothing will ever arrive on this job.
			done()
			return
		}
		if rec == nil {
			// Finished and persisted: replay the artifact and end.
			emit(eventsAfter(events, after))
			done()
			return
		}
		// Order matters: closed-check, then channel, then drain — a Close
		// racing this sequence still fires the (already-closed) channel, so
		// the next iteration observes it.
		closed := rec.Closed()
		ch := rec.Updated()
		emit(rec.EventsAfter(after))
		if closed {
			done()
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}

// eventsAfter pages a decoded event slice by Seq cursor.
func eventsAfter(events []journal.Event, after uint64) []journal.Event {
	if after == 0 {
		return events
	}
	i := 0
	for i < len(events) && events[i].Seq <= after {
		i++
	}
	return events[i:]
}

func handlePoC(w http.ResponseWriter, r *http.Request, j *Job) {
	if !j.State().Terminal() {
		writeErr(w, http.StatusConflict, errors.New("job has not finished"))
		return
	}
	rep := j.Report()
	if rep == nil || len(rep.PoCPrime) == 0 {
		writeErr(w, http.StatusNotFound, errors.New("no reformed PoC was generated"))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(rep.PoCPrime)
}

// withJob resolves the {id} path segment, answering 404 for unknown jobs.
func (s *Service) withJob(h func(http.ResponseWriter, *http.Request, *Job)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.Job(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		h(w, r, j)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
