package service

import (
	"octopocs/internal/artifact"
	"octopocs/internal/clonedet"
	"octopocs/internal/core"
	"octopocs/internal/telemetry"
)

// serviceMetrics holds the instrument handles the service records into. The
// engine sinks (VM, symex, solver) live in engines and are threaded into the
// pipeline config; everything else is observed by the job lifecycle in
// Submit/runJob/finishJob or collected at scrape time from live state.
type serviceMetrics struct {
	submitted *telemetry.Counter
	rejected  *telemetry.Counter
	completed *telemetry.Counter
	failed    *telemetry.Counter
	cancelled *telemetry.Counter

	// queueWait is submission-to-start latency; phase is per-phase
	// pipeline latency of completed jobs, indexed like counters.phase.
	queueWait *telemetry.Histogram
	phase     [4]*telemetry.Histogram

	verdicts map[core.Verdict]*telemetry.Counter
	types    map[core.ResultType]*telemetry.Counter

	engines *core.Metrics
	// clonedet is the retrieval counter family; batch scans thread it into
	// their per-request index and report candidate verdicts through it.
	clonedet *clonedet.Metrics
}

// newServiceMetrics registers every service-level family on reg. The verdict
// and result-type families are pre-registered for all known values so they
// expose as 0 before the first job completes. Gauges over live state (queue
// depth, running jobs, cache counters) are scrape-time functions; WriteText
// holds the registry lock while calling them, so they may take Service.mu
// but the service must never touch the registry while holding its own lock.
func newServiceMetrics(s *Service, reg *telemetry.Registry) *serviceMetrics {
	m := &serviceMetrics{
		submitted: reg.Counter("octopocs_jobs_submitted_total",
			"Jobs accepted into the queue.", nil),
		rejected: reg.Counter("octopocs_jobs_rejected_total",
			"Submissions rejected (queue full or shutting down).", nil),
		completed: reg.Counter("octopocs_jobs_completed_total",
			"Jobs that produced a report.", nil),
		failed: reg.Counter("octopocs_jobs_failed_total",
			"Jobs that ended in a pipeline error.", nil),
		cancelled: reg.Counter("octopocs_jobs_cancelled_total",
			"Jobs cancelled or timed out.", nil),
		queueWait: reg.Histogram("octopocs_queue_wait_seconds",
			"Time jobs spent queued before a worker picked them up.", nil, nil),
		verdicts: make(map[core.Verdict]*telemetry.Counter, 3),
		types:    make(map[core.ResultType]*telemetry.Counter, 4),
	}
	for i, name := range phaseNames {
		m.phase[i] = reg.Histogram("octopocs_phase_seconds",
			"Per-phase pipeline latency of completed jobs.",
			telemetry.Labels{"phase": name}, nil)
	}
	for _, v := range []core.Verdict{core.VerdictTriggered, core.VerdictNotTriggerable, core.VerdictFailure} {
		m.verdicts[v] = reg.Counter("octopocs_verdicts_total",
			"Completed-job verdicts.", telemetry.Labels{"verdict": v.String()})
	}
	for _, t := range []core.ResultType{core.TypeI, core.TypeII, core.TypeIII, core.TypeFailure} {
		m.types[t] = reg.Counter("octopocs_result_types_total",
			"Completed-job Table II result types.", telemetry.Labels{"type": t.String()})
	}

	reg.GaugeFunc("octopocs_queue_depth",
		"Jobs waiting for a worker.", nil,
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("octopocs_jobs_running",
		"Jobs currently executing.", nil,
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.running)
		})
	reg.Gauge("octopocs_workers", "Worker-pool size.", nil).Set(int64(s.cfg.Workers))
	for name, store := range map[string]*Store{"p1": &s.p1c, "p2": &s.p2c} {
		labels := telemetry.Labels{"cache": name}
		st := store
		reg.CounterFunc("octopocs_cache_hits_total",
			"Artifact cache hits.", labels, func() float64 {
				if cc := cacheCounters(*st); cc != nil {
					return float64(cc.Hits)
				}
				return 0
			})
		reg.CounterFunc("octopocs_cache_misses_total",
			"Artifact cache misses.", labels, func() float64 {
				if cc := cacheCounters(*st); cc != nil {
					return float64(cc.Misses)
				}
				return 0
			})
	}
	if s.cfg.Stores != nil {
		registerStoreMetrics(reg, s.cfg.Stores)
	}

	m.engines = core.NewMetrics(reg)
	m.clonedet = clonedet.NewMetrics(reg)
	return m
}

// registerStoreMetrics exposes the persistent artifact stores' accounting
// as scrape-time collectors, one series per class. The disk-bytes gauge,
// corruption counter, write-error counter, and saturation flag are the
// alert-worthy signals (see OPERATIONS.md); hits and misses feed the same
// warm-restart dashboards as the cache counters.
func registerStoreMetrics(reg *telemetry.Registry, stores *Stores) {
	stores.each(func(class string, st *artifact.Store) {
		labels := telemetry.Labels{"class": class}
		counter := func(name, help string, read func(artifact.Counters) uint64) {
			reg.CounterFunc(name, help, labels, func() float64 {
				return float64(read(st.Counters()))
			})
		}
		counter("octopocs_store_hits_total",
			"Artifact store hits across both tiers.",
			func(c artifact.Counters) uint64 { return c.Hits() })
		counter("octopocs_store_disk_hits_total",
			"Artifact store hits served from the disk tier (decode paid).",
			func(c artifact.Counters) uint64 { return c.DiskHits })
		counter("octopocs_store_misses_total",
			"Artifact store misses.",
			func(c artifact.Counters) uint64 { return c.Misses })
		counter("octopocs_store_writes_total",
			"Artifact store successful disk persists.",
			func(c artifact.Counters) uint64 { return c.Writes })
		counter("octopocs_store_write_errors_total",
			"Artifact store failed disk persists (each opens a saturation window).",
			func(c artifact.Counters) uint64 { return c.WriteErrors })
		counter("octopocs_store_evictions_total",
			"Artifact store disk entries evicted by the byte budget.",
			func(c artifact.Counters) uint64 { return c.Evictions })
		counter("octopocs_store_corrupt_dropped_total",
			"Artifact store entries dropped for failing header or checksum validation.",
			func(c artifact.Counters) uint64 { return c.CorruptDropped })
		reg.GaugeFunc("octopocs_store_disk_bytes",
			"Artifact store disk tier occupancy in bytes.", labels,
			func() float64 { return float64(st.Counters().DiskBytes) })
		reg.GaugeFunc("octopocs_store_disk_entries",
			"Artifact store disk tier entry count.", labels,
			func() float64 { return float64(st.Counters().DiskEntries) })
		reg.GaugeFunc("octopocs_store_saturated",
			"1 while this store's disk tier is refusing writes.", labels,
			func() float64 {
				if st.Saturated() {
					return 1
				}
				return 0
			})
	})
}

// observeFinish records terminal-state accounting for one job. Called
// without Service.mu held; every instrument is internally synchronized.
func (m *serviceMetrics) observeFinish(state JobState, rep *core.Report) {
	switch state {
	case JobDone:
		m.completed.Inc()
		t := rep.Timings
		for i, d := range [4]float64{t.P1.Seconds(), t.P2Prep.Seconds(), t.Reform.Seconds(), t.P4.Seconds()} {
			m.phase[i].Observe(d)
		}
		m.verdicts[rep.Verdict].Inc()
		m.types[rep.Type].Inc()
	case JobCancelled:
		m.cancelled.Inc()
	default:
		m.failed.Inc()
	}
}
