package service

import (
	"time"

	"octopocs/internal/artifact"
)

// PhaseLatency summarizes completed-job latency for one pipeline phase.
// The quantiles are estimated from the phase's fixed-bucket histogram
// (linear interpolation within the winning bucket), so they are approximate
// but cheap and mergeable — unlike the exact count/total pair.
type PhaseLatency struct {
	Count   uint64  `json:"count"`
	TotalMS float64 `json:"total_ms"`
	AvgMS   float64 `json:"avg_ms"`
	P50MS   float64 `json:"p50_ms"`
	P90MS   float64 `json:"p90_ms"`
	P99MS   float64 `json:"p99_ms"`
}

// Stats is the point-in-time service snapshot served by /v1/stats.
type Stats struct {
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"` // jobs waiting for a worker now
	QueueCap   int `json:"queue_cap"`
	Running    int `json:"running"`

	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`

	// PhaseLatency is keyed by phase name: p1, p2_prep, reform, p4.
	PhaseLatency map[string]PhaseLatency `json:"phase_latency"`

	// P1Cache/P2Cache hold hit/miss counters when the backend supports
	// accounting (the built-in LRU and the persistent artifact store do);
	// nil otherwise. JournalCache is the same for the persisted-journal
	// artifact store.
	P1Cache      *CacheCounters `json:"p1_cache,omitempty"`
	P2Cache      *CacheCounters `json:"p2_cache,omitempty"`
	JournalCache *CacheCounters `json:"journal_cache,omitempty"`

	// Stores holds the persistent artifact stores' full accounting keyed by
	// class (p1, p2, jr, ci); absent when the service runs memory-only.
	// StoreSaturated mirrors the admission-control signal: while true,
	// submissions answer 429.
	Stores         map[string]artifact.Counters `json:"stores,omitempty"`
	StoreSaturated bool                         `json:"store_saturated,omitempty"`
}

// Stats snapshots the service counters, queue occupancy, and cache
// accounting.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Workers:      s.cfg.Workers,
		QueueDepth:   len(s.queue),
		QueueCap:     cap(s.queue),
		Running:      s.running,
		Submitted:    s.ctr.submitted,
		Rejected:     s.ctr.rejected,
		Completed:    s.ctr.completed,
		Failed:       s.ctr.failed,
		Cancelled:    s.ctr.cancelled,
		PhaseLatency: make(map[string]PhaseLatency, len(phaseNames)),
	}
	for i, name := range phaseNames {
		acc := s.ctr.phase[i]
		pl := PhaseLatency{
			Count:   acc.n,
			TotalMS: float64(acc.total) / float64(time.Millisecond),
		}
		if acc.n > 0 {
			pl.AvgMS = pl.TotalMS / float64(acc.n)
		}
		h := s.met.phase[i]
		const ms = 1000
		pl.P50MS = h.Quantile(0.50) * ms
		pl.P90MS = h.Quantile(0.90) * ms
		pl.P99MS = h.Quantile(0.99) * ms
		st.PhaseLatency[name] = pl
	}
	// s.p1c/s.p2c are written once in New, before any worker or handler
	// can call Stats, so reading them is safe anywhere; they stay inside
	// the critical section so the whole snapshot is taken at one point in
	// time. Lock order Service.mu → LRU.mu is safe: the cache never calls
	// back into the service.
	st.P1Cache = cacheCounters(s.p1c)
	st.P2Cache = cacheCounters(s.p2c)
	st.JournalCache = cacheCounters(s.jrc)
	st.Stores = s.cfg.Stores.Counters()
	st.StoreSaturated = s.cfg.Stores.Saturated()
	s.mu.Unlock()
	return st
}

// cacheCounters extracts accounting from stores that expose it, folding the
// tiered artifact-store counters into the flat hit/miss view (the full
// per-tier breakdown is in Stats.Stores).
func cacheCounters(st Store) *CacheCounters {
	switch c := st.(type) {
	case interface{ Counters() CacheCounters }:
		cc := c.Counters()
		return &cc
	case interface{ Counters() artifact.Counters }:
		ac := c.Counters()
		return &CacheCounters{
			Hits:      ac.Hits(),
			Misses:    ac.Misses,
			Evictions: ac.Evictions + ac.HotEvictions,
			Entries:   st.Len(),
		}
	}
	return nil
}
