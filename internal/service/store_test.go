package service_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strconv"
	"testing"

	"octopocs/internal/core"
	"octopocs/internal/corpus"
	"octopocs/internal/faultinject"
	"octopocs/internal/service"
)

// openStores opens a per-class store bundle over dir for tests.
func openStores(t *testing.T, dir string, faults *faultinject.Injector) *service.Stores {
	t.Helper()
	st, err := service.OpenStores(service.StoreOptions{Dir: dir, Faults: faults})
	if err != nil {
		t.Fatalf("OpenStores: %v", err)
	}
	return st
}

func storeInjector(t *testing.T, schedule string) *faultinject.Injector {
	t.Helper()
	sch, err := faultinject.ParseSchedule(schedule)
	if err != nil {
		t.Fatalf("ParseSchedule(%q): %v", schedule, err)
	}
	return faultinject.New(sch)
}

// allSpecs is the full 17-pair corpus (Table II rows plus static-prune
// pairs).
func allSpecs() []*corpus.PairSpec {
	return append(corpus.All(), corpus.StaticSet()...)
}

// runCorpus verifies every corpus pair through svc and returns the reports
// keyed by row index.
func runCorpus(t *testing.T, svc *service.Service) map[int]*core.Report {
	t.Helper()
	jobs := make(map[int]*service.Job)
	for _, spec := range allSpecs() {
		job, err := svc.Submit(spec.Pair)
		if err != nil {
			t.Fatalf("submit idx %d: %v", spec.Idx, err)
		}
		jobs[spec.Idx] = job
	}
	reps := make(map[int]*core.Report)
	for idx, job := range jobs {
		rep, err := job.Wait(context.Background())
		if err != nil {
			t.Fatalf("idx %d: %v", idx, err)
		}
		reps[idx] = rep
	}
	return reps
}

// TestWarmRestartRecomputesNothing is the tentpole acceptance scenario: a
// service backed by the persistent store verifies the whole corpus, shuts
// down, and a brand-new service over a brand-new store bundle (same
// directory — the "restarted node") re-verifies it. Every P1 and P2-prep
// artifact must come from the store, and every report must be identical.
func TestWarmRestartRecomputesNothing(t *testing.T) {
	dir := t.TempDir()

	st1 := openStores(t, dir, nil)
	svc1 := service.New(service.Config{Workers: 4, Stores: st1})
	cold := runCorpus(t, svc1)
	svc1.Shutdown(context.Background())
	st1.Close()

	st2 := openStores(t, dir, nil)
	defer st2.Close()
	svc2 := service.New(service.Config{Workers: 4, Stores: st2})
	defer svc2.Shutdown(context.Background())
	warm := runCorpus(t, svc2)

	for _, spec := range allSpecs() {
		c, w := cold[spec.Idx], warm[spec.Idx]
		if !w.Timings.P1Cached || !w.Timings.P2Cached {
			t.Errorf("idx %d: warm restart recomputed artifacts (p1=%v p2=%v)",
				spec.Idx, w.Timings.P1Cached, w.Timings.P2Cached)
		}
		cc, ww := *c, *w
		cc.Timings, ww.Timings = core.PhaseTimings{}, core.PhaseTimings{}
		if !reflect.DeepEqual(cc, ww) {
			t.Errorf("idx %d: warm report differs from cold\ncold %+v\nwarm %+v", spec.Idx, cc, ww)
		}
	}
	ctrs := st2.Counters()
	if ctrs["p1"].DiskHits == 0 || ctrs["p2"].DiskHits == 0 {
		t.Errorf("no disk hits recorded: p1=%+v p2=%+v", ctrs["p1"], ctrs["p2"])
	}
}

// TestCrashConsistencyTornWrites kills every store write mid-payload (the
// torn-write fault models a crash after the rename was durable but before
// the data pages were), then reopens the directory: the integrity scan must
// drop every partial entry, and the full corpus must still verify with
// byte-identical reports — corruption can cost recomputation, never a
// different verdict.
func TestCrashConsistencyTornWrites(t *testing.T) {
	dir := t.TempDir()

	// Baseline reports from a memory-only service.
	ref := service.New(service.Config{Workers: 4})
	want := runCorpus(t, ref)
	ref.Shutdown(context.Background())

	// "Crashing" run: every disk persist is torn mid-write.
	st1 := openStores(t, dir, storeInjector(t, "artifact.torn_write"))
	svc1 := service.New(service.Config{Workers: 4, Stores: st1})
	runCorpus(t, svc1)
	svc1.Shutdown(context.Background())
	if c := st1.Counters(); c["p1"].Writes == 0 || c["p2"].Writes == 0 {
		t.Fatalf("torn run persisted nothing: %+v", c)
	}
	st1.Close()

	// Recovery: the scan must drop the partial entries...
	st2 := openStores(t, dir, nil)
	defer st2.Close()
	ctrs := st2.Counters()
	dropped := uint64(0)
	entries := 0
	for _, c := range ctrs {
		dropped += c.CorruptDropped
		entries += c.DiskEntries
	}
	if dropped == 0 {
		t.Fatalf("integrity scan dropped nothing: %+v", ctrs)
	}
	if entries != 0 {
		t.Fatalf("torn entries survived the scan: %+v", ctrs)
	}
	// ...and verification over the recovered store stays byte-identical.
	svc2 := service.New(service.Config{Workers: 4, Stores: st2})
	defer svc2.Shutdown(context.Background())
	got := runCorpus(t, svc2)
	for _, spec := range allSpecs() {
		w, g := *want[spec.Idx], *got[spec.Idx]
		w.Timings, g.Timings = core.PhaseTimings{}, core.PhaseTimings{}
		if !reflect.DeepEqual(w, g) {
			t.Errorf("idx %d: report changed after torn-write recovery\nwant %+v\n got %+v",
				spec.Idx, w, g)
		}
	}
}

// TestWarmRestartAcrossProcesses is the CI cross-process hook: with
// OCTOPOCS_STORE_DIR set, the first invocation populates the store and
// later invocations (new processes) must be served entirely from it. The
// pre-population check keys off the store's own disk counters, so the same
// test body plays both roles.
func TestWarmRestartAcrossProcesses(t *testing.T) {
	dir := os.Getenv("OCTOPOCS_STORE_DIR")
	if dir == "" {
		t.Skip("OCTOPOCS_STORE_DIR not set")
	}
	st := openStores(t, dir, nil)
	defer st.Close()
	populated := st.Counters()["p1"].DiskEntries > 0
	svc := service.New(service.Config{Workers: 4, Stores: st})
	defer svc.Shutdown(context.Background())
	reps := runCorpus(t, svc)
	if !populated {
		t.Logf("store at %s populated cold; rerun to assert warm reuse", dir)
		return
	}
	for _, spec := range allSpecs() {
		w := reps[spec.Idx]
		if !w.Timings.P1Cached || !w.Timings.P2Cached {
			t.Errorf("idx %d: prior process's artifacts not reused (p1=%v p2=%v)",
				spec.Idx, w.Timings.P1Cached, w.Timings.P2Cached)
		}
	}
}

// TestBatchSubmitDedup covers POST-/v1/batches semantics at the Go API
// level: duplicate pairs share one job, all items resolve, and the batch
// reaches the done state.
func TestBatchSubmitDedup(t *testing.T) {
	svc := service.New(service.Config{Workers: 4})
	defer svc.Shutdown(context.Background())

	s1, s2 := corpus.ByIdx(1), corpus.ByIdx(2)
	b, err := svc.SubmitBatch("dedup", []*core.Pair{s1.Pair, s2.Pair, s1.Pair})
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	st := b.Snapshot()
	if st.Total != 3 || st.Unique != 2 {
		t.Fatalf("batch = %+v, want total 3 unique 2", st)
	}
	if st.Items[0].JobID != st.Items[2].JobID || st.Items[0].JobID == st.Items[1].JobID {
		t.Fatalf("dedup mapping wrong: %+v", st.Items)
	}
	if st.Items[0].Deduped || st.Items[1].Deduped || !st.Items[2].Deduped {
		t.Fatalf("dedup flags wrong: %+v", st.Items)
	}
	for _, item := range st.Items {
		j, ok := svc.Job(item.JobID)
		if !ok {
			t.Fatalf("batch references unknown job %s", item.JobID)
		}
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatalf("job %s: %v", item.JobID, err)
		}
	}
	if st = b.Snapshot(); st.State != "done" || st.Done != 2 {
		t.Fatalf("finished batch = %+v", st)
	}
}

// TestBatchAtomicRejection proves all-or-nothing admission: a batch whose
// unique jobs exceed the queue's free capacity is rejected whole, enqueuing
// nothing.
func TestBatchAtomicRejection(t *testing.T) {
	svc := service.New(service.Config{Workers: 1, QueueDepth: 2})
	defer svc.Shutdown(context.Background())

	pairs := []*core.Pair{corpus.ByIdx(1).Pair, corpus.ByIdx(2).Pair, corpus.ByIdx(3).Pair}
	if _, err := svc.SubmitBatch("too-big", pairs); err == nil {
		t.Fatal("oversized batch admitted")
	}
	if jobs := svc.Jobs(); len(jobs) != 0 {
		t.Fatalf("rejected batch leaked %d jobs", len(jobs))
	}
	st := svc.Stats()
	if st.Rejected != 3 {
		t.Errorf("rejected counter = %d, want 3", st.Rejected)
	}
	// The queue is untouched, so a fitting batch goes through afterwards.
	b, err := svc.SubmitBatch("fits", pairs[:2])
	if err != nil {
		t.Fatalf("fitting batch rejected: %v", err)
	}
	for _, j := range b.Snapshot().Items {
		job, _ := svc.Job(j.JobID)
		if _, err := job.Wait(context.Background()); err != nil {
			t.Fatalf("job %s: %v", j.JobID, err)
		}
	}
}

// TestBatchHTTPBackpressure drives the 429 + Retry-After contract over the
// wire: an unsatisfiable batch answers 429 with a positive Retry-After, and
// the error names the capacity shortfall.
func TestBatchHTTPBackpressure(t *testing.T) {
	svc := service.New(service.Config{Workers: 1, QueueDepth: 1})
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	req := service.BatchRequest{Jobs: []service.SubmitRequest{
		{CorpusIdx: 1}, {CorpusIdx: 2},
	}}
	resp, body := postJSON(t, ts.URL+"/v1/batches", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want positive integer seconds", resp.Header.Get("Retry-After"))
	}

	// A fitting batch is accepted and reports its mapping.
	resp, body = postJSON(t, ts.URL+"/v1/batches",
		service.BatchRequest{Name: "ok", Jobs: []service.SubmitRequest{{CorpusIdx: 1}}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
}

// TestSaturationBackpressure drives admission control off the disk-full
// fault: once a store write fails, submissions reject with ErrSaturated and
// the HTTP layer answers 429 with the saturation hold as Retry-After.
func TestSaturationBackpressure(t *testing.T) {
	st := openStores(t, t.TempDir(), storeInjector(t, "artifact.disk_full"))
	defer st.Close()
	svc := service.New(service.Config{Workers: 2, Stores: st})
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// The first job's artifact writes trip the fault; the job itself still
	// completes (the hot tier absorbs the loss).
	job, err := svc.Submit(corpus.ByIdx(1).Pair)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatalf("job under disk-full failed: %v", err)
	}
	if !st.Saturated() {
		t.Fatal("stores not saturated after failed writes")
	}
	if _, err := svc.Submit(corpus.ByIdx(2).Pair); err == nil {
		t.Fatal("saturated service accepted a submission")
	}
	resp, body := postJSON(t, ts.URL+"/v1/jobs", service.SubmitRequest{CorpusIdx: 2})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want positive integer seconds", resp.Header.Get("Retry-After"))
	}
	stats := svc.Stats()
	if !stats.StoreSaturated {
		t.Error("stats do not report saturation")
	}
	if stats.Stores["p1"].WriteErrors == 0 {
		t.Errorf("p1 store recorded no write errors: %+v", stats.Stores["p1"])
	}
}

// TestScanFingerprintStoreReuse proves the clone-detection fingerprints
// flow through the persistent store: a second scan over the same targets in
// a fresh process is served from disk.
func TestScanFingerprintStoreReuse(t *testing.T) {
	dir := t.TempDir()
	st1 := openStores(t, dir, nil)
	svc1 := service.New(service.Config{Workers: 2, Stores: st1})
	req := &service.ScanRequest{CorpusIdx: 1, CorpusTargets: true, RetrieveOnly: true}
	if _, err := svc1.StartScan(req); err != nil {
		t.Fatalf("cold scan: %v", err)
	}
	if c := st1.Counters()["ci"]; c.Writes == 0 {
		t.Fatalf("cold scan persisted no fingerprints: %+v", c)
	}
	svc1.Shutdown(context.Background())
	st1.Close()

	st2 := openStores(t, dir, nil)
	defer st2.Close()
	svc2 := service.New(service.Config{Workers: 2, Stores: st2})
	defer svc2.Shutdown(context.Background())
	sc1, err := svc2.StartScan(req)
	if err != nil {
		t.Fatalf("warm scan: %v", err)
	}
	if c := st2.Counters()["ci"]; c.DiskHits == 0 {
		t.Errorf("warm scan not served from the fingerprint store: %+v", c)
	}
	// Same request against the in-memory reference: candidates must agree.
	ref := service.New(service.Config{Workers: 2})
	defer ref.Shutdown(context.Background())
	sc2, err := ref.StartScan(req)
	if err != nil {
		t.Fatalf("reference scan: %v", err)
	}
	if got, want := sc1.Snapshot().Candidates, sc2.Snapshot().Candidates; !reflect.DeepEqual(got, want) {
		t.Errorf("store-served scan diverged\n got %+v\nwant %+v", got, want)
	}
}
