package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"octopocs/internal/asm"
	"octopocs/internal/corpus"
	"octopocs/internal/service"
	"octopocs/internal/testutil"
)

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestHandlerInlineSubmission drives the full HTTP flow with an inline
// pair: the programs travel as assembled MIR text and round-trip through
// asm.Parse on the server.
func TestHandlerInlineSubmission(t *testing.T) {
	svc := service.New(service.Config{Workers: 2})
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	spec := corpus.ByIdx(1)
	req := service.SubmitRequest{
		Name:    "inline-jpegc",
		S:       asm.Format(spec.Pair.S),
		T:       asm.Format(spec.Pair.T),
		PoC:     spec.Pair.PoC,
		CtxArgs: spec.Pair.CtxArgs,
	}
	// Mirror ℓ exactly as the corpus defines it.
	for fn := range spec.Pair.Lib {
		req.Lib = append(req.Lib, fn)
	}

	resp, body := postJSON(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var st service.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Pair != "inline-jpegc" {
		t.Errorf("pair name = %q", st.Pair)
	}

	// Poll until terminal.
	testutil.WaitFor(t, func() bool {
		r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		return st.State == "done" || st.State == "failed" || st.State == "cancelled"
	}, 30*time.Second, "job %s did not reach a terminal state", st.ID)
	if st.State != "done" || st.Verdict != "triggered" {
		t.Fatalf("job finished as %+v, want done/triggered", st)
	}

	// The inline submission must verify identically to the built-in pair.
	direct, err := svc.Pipeline().Verify(corpus.ByIdx(1).Pair)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/poc")
	if err != nil {
		t.Fatal(err)
	}
	poc, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if !bytes.Equal(poc, direct.PoCPrime) {
		t.Errorf("poc' over HTTP (%d bytes) differs from direct run (%d bytes)", len(poc), len(direct.PoCPrime))
	}
}

func TestHandlerQueueFull429(t *testing.T) {
	svc := service.New(service.Config{Workers: 1, QueueDepth: 1})
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	slow := slowPair()
	submit := func() (*http.Response, []byte) {
		return postJSON(t, ts.URL+"/v1/jobs", service.SubmitRequest{
			S: asm.Format(slow.S), T: asm.Format(slow.T),
			PoC: slow.PoC, Lib: []string{"reader"}, MaxSteps: slow.MaxSteps,
		})
	}

	resp, body := submit()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d: %s", resp.StatusCode, body)
	}
	var first service.JobStatus
	json.Unmarshal(body, &first)
	j, _ := svc.Job(first.ID)
	waitRunning(t, j)

	if resp, body = submit(); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d: %s", resp.StatusCode, body)
	}
	if resp, _ = submit(); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: %d, want 429", resp.StatusCode)
	}
	st := svc.Stats()
	if st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}

	// Cancel over HTTP and confirm the state flips.
	resp, body = postJSON(t, ts.URL+"/v1/jobs/"+first.ID+"/cancel", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d: %s", resp.StatusCode, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	j.Wait(ctx)
	if got := j.State(); got != service.JobCancelled {
		t.Errorf("state after HTTP cancel = %v, want cancelled", got)
	}
	for _, js := range svc.Jobs() {
		if jj, ok := svc.Job(js.ID); ok {
			jj.Cancel()
		}
	}
}
