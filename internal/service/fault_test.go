package service_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"octopocs/internal/core"
	"octopocs/internal/corpus"
	"octopocs/internal/faultinject"
	"octopocs/internal/service"
	"octopocs/internal/testutil"
)

func injector(t *testing.T, schedule string) *faultinject.Injector {
	t.Helper()
	sch, err := faultinject.ParseSchedule(schedule)
	if err != nil {
		t.Fatalf("ParseSchedule(%q): %v", schedule, err)
	}
	return faultinject.New(sch)
}

// TestInjectedQueueFull checks a service.queue_full fault makes Submit
// reject exactly like real backpressure — ErrQueueFull, counted — while the
// next submission goes through untouched.
func TestInjectedQueueFull(t *testing.T) {
	svc := service.New(service.Config{
		Workers:  1,
		Pipeline: core.Config{Faults: injector(t, "service.queue_full:nth=1")},
	})
	defer svc.Shutdown(context.Background())

	if _, err := svc.Submit(corpus.ByIdx(1).Pair); !errors.Is(err, service.ErrQueueFull) {
		t.Fatalf("first submit returned %v, want ErrQueueFull", err)
	}
	if st := svc.Stats(); st.Rejected != 1 {
		t.Errorf("rejected counter = %d, want 1", st.Rejected)
	}
	job, err := svc.Submit(corpus.ByIdx(1).Pair)
	if err != nil {
		t.Fatalf("second submit: %v", err)
	}
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatalf("job after injected rejection: %v", err)
	}
}

// TestInjectedJobDeadline checks a service.job_deadline fault expires the
// job's context as if a real deadline had passed: the job ends cancelled
// with a deadline error, and the pool moves on to the next job.
func TestInjectedJobDeadline(t *testing.T) {
	svc := service.New(service.Config{
		Workers:  1,
		Pipeline: core.Config{Faults: injector(t, "service.job_deadline:nth=1")},
	})
	defer svc.Shutdown(context.Background())

	job, err := svc.Submit(slowPair())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := job.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline-faulted job returned %v, want DeadlineExceeded", err)
	}
	if st := job.State(); st != service.JobCancelled {
		t.Errorf("state = %v, want cancelled", st)
	}

	// The fault was one-shot: the pool is healthy for the next job.
	ok, err := svc.Submit(corpus.ByIdx(1).Pair)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ok.Wait(context.Background()); err != nil {
		t.Fatalf("follow-up job: %v", err)
	}
}

// TestJobRunnerPanicContained checks a panic escaping the pipeline inside a
// worker becomes a structured job failure — the worker survives and keeps
// serving jobs, and nothing leaks.
func TestJobRunnerPanicContained(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)

	svc := service.New(service.Config{Workers: 1})
	defer svc.Shutdown(context.Background())

	// A poisoned pair: a nil S program makes the P1 interpreter dereference
	// nil — a genuine bug-shaped panic, not an injected one.
	good := corpus.ByIdx(1).Pair
	bad := *good
	bad.Name = "poisoned"
	bad.S = nil

	job, err := svc.Submit(&bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(context.Background()); err == nil {
		t.Fatal("poisoned job returned nil error")
	}
	var pe *faultinject.PanicError
	if !errors.As(job.Err(), &pe) {
		t.Fatalf("job error = %v, want *PanicError", job.Err())
	}
	if st := job.State(); st != service.JobFailed {
		t.Errorf("state = %v, want failed", st)
	}

	// The same worker still verifies real pairs.
	next, err := svc.Submit(good)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := next.Wait(context.Background())
	if err != nil {
		t.Fatalf("job after contained panic: %v", err)
	}
	if rep.Verdict != core.VerdictTriggered {
		t.Errorf("verdict after contained panic = %v, want Triggered", rep.Verdict)
	}
}

// TestHandlerPanic500 checks the HTTP recover middleware converts injected
// handler panics into 500 responses without killing the server, and that
// subsequent requests succeed.
func TestHandlerPanic500(t *testing.T) {
	in := injector(t, "service.handler_panic:nth=1|2")
	svc := service.New(service.Config{
		Workers:  1,
		Pipeline: core.Config{Faults: in},
	})
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/v1/jobs")
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Errorf("request %d: status %d, want 500", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-panic status %d, want 200", resp.StatusCode)
	}
	if in.RecoveredCount() != 2 {
		t.Errorf("RecoveredCount = %d, want 2", in.RecoveredCount())
	}
}
