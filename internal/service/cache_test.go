package service_test

import (
	"fmt"
	"testing"

	"octopocs/internal/service"
)

func TestLRUEvictsOldest(t *testing.T) {
	c := service.NewLRU(2)
	c.Put("a", 1)
	c.Put("b", 2)
	// Touch a so b becomes the eviction candidate.
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c should be present")
	}
	if n := c.Len(); n != 2 {
		t.Errorf("Len = %d, want 2", n)
	}
}

func TestLRUUpdateInPlace(t *testing.T) {
	c := service.NewLRU(2)
	c.Put("a", 1)
	c.Put("a", 2)
	if n := c.Len(); n != 1 {
		t.Fatalf("Len after double Put = %d, want 1", n)
	}
	if v, _ := c.Get("a"); v != 2 {
		t.Errorf("Get(a) = %v, want 2", v)
	}
}

func TestLRUCounters(t *testing.T) {
	c := service.NewLRU(1)
	c.Get("missing")
	c.Put("a", 1)
	c.Get("a")
	c.Put("b", 2) // evicts a
	got := c.Counters()
	want := service.CacheCounters{Hits: 1, Misses: 1, Evictions: 1, Entries: 1}
	if got != want {
		t.Errorf("Counters = %+v, want %+v", got, want)
	}
}

func TestLRUMinimumCapacity(t *testing.T) {
	c := service.NewLRU(0)
	c.Put("a", 1)
	if _, ok := c.Get("a"); !ok {
		t.Error("capacity-clamped cache dropped its only entry")
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := service.NewLRU(16)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				key := fmt.Sprintf("k%d", i%32)
				c.Put(key, i)
				c.Get(key)
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if n := c.Len(); n > 16 {
		t.Errorf("Len = %d exceeds capacity 16", n)
	}
}
