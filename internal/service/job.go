package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"octopocs/internal/core"
	"octopocs/internal/journal"
	"octopocs/internal/telemetry"
)

// JobState is the lifecycle position of a submitted verification.
type JobState int

// Job states.
const (
	// JobQueued: accepted, waiting for a worker.
	JobQueued JobState = iota + 1
	// JobRunning: a worker is executing the pipeline.
	JobRunning
	// JobDone: the pipeline produced a report (any verdict).
	JobDone
	// JobFailed: the pipeline returned an error (e.g. the poc does not
	// crash S).
	JobFailed
	// JobCancelled: the job was cancelled or timed out before completing.
	JobCancelled
)

// String renders the state.
func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	case JobCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// Job is one submitted verification task. All methods are safe for
// concurrent use.
type Job struct {
	id     string
	pair   *core.Pair
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu        sync.Mutex
	state     JobState
	report    *core.Report
	err       error
	submitted time.Time
	started   time.Time
	finished  time.Time
	// trace is the live span recorder while the job runs; on finish it
	// moves to the service's bounded trace ring and this field is cleared.
	trace *telemetry.Trace
	// journal is the live provenance recorder while the job runs; on
	// finish it is persisted as a JSONL artifact in the journal store and
	// this field is cleared, leaving the key and counts behind.
	journal        *journal.Recorder
	journalKey     string
	journalLen     int
	journalDropped uint64
}

// ID returns the job identifier assigned at submission.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel requests cooperative cancellation. Safe to call in any state;
// cancelling a finished job is a no-op.
func (j *Job) Cancel() { j.cancel() }

// Wait blocks until the job finishes or ctx expires, returning the report
// and error the job finished with.
func (j *Job) Wait(ctx context.Context) (*core.Report, error) {
	select {
	case <-j.done:
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.report, j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Report returns the finished report, or nil while the job is still
// pending or when it failed.
func (j *Job) Report() *core.Report {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report
}

// Err returns the terminal error, if any.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Trace returns the live span recorder, or nil once the job has finished
// (the service's trace ring owns finished traces) or when tracing is off.
func (j *Job) Trace() *telemetry.Trace {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace
}

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Elapsed is the verification wall clock: started to finished, or to now
// while running; zero before the job starts.
func (j *Job) Elapsed() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.started.IsZero():
		return 0
	case j.finished.IsZero():
		return time.Since(j.started)
	default:
		return j.finished.Sub(j.started)
	}
}

// JobStatus is the JSON-facing snapshot of a job.
type JobStatus struct {
	ID        string    `json:"id"`
	Pair      string    `json:"pair"`
	State     string    `json:"state"`
	Submitted time.Time `json:"submitted"`
	ElapsedMS float64   `json:"elapsed_ms"`
	// Terminal-state detail.
	Error    string `json:"error,omitempty"`
	Verdict  string `json:"verdict,omitempty"`
	Type     string `json:"type,omitempty"`
	Reason   string `json:"reason,omitempty"`
	PoCBytes int    `json:"poc_bytes,omitempty"`
	// Cache reuse observed by the finished run.
	P1Cached bool `json:"p1_cached,omitempty"`
	P2Cached bool `json:"p2_cached,omitempty"`
	// Provenance journal accounting: retained event count, events the
	// capacity bound discarded, and (once finished) the content address of
	// the persisted JSONL artifact.
	JournalEvents  int    `json:"journal_events,omitempty"`
	JournalDropped uint64 `json:"journal_dropped,omitempty"`
	JournalKey     string `json:"journal_key,omitempty"`
}

// Snapshot renders the job for status endpoints.
func (j *Job) Snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		Pair:      j.pair.Name,
		State:     j.state.String(),
		Submitted: j.submitted,
	}
	switch {
	case j.started.IsZero():
	case j.finished.IsZero():
		st.ElapsedMS = float64(time.Since(j.started)) / float64(time.Millisecond)
	default:
		st.ElapsedMS = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.report != nil {
		st.Verdict = j.report.Verdict.String()
		st.Type = j.report.Type.String()
		st.Reason = string(j.report.Reason)
		st.PoCBytes = len(j.report.PoCPrime)
		st.P1Cached = j.report.Timings.P1Cached
		st.P2Cached = j.report.Timings.P2Cached
	}
	switch {
	case j.journal != nil:
		st.JournalEvents = j.journal.Len()
		st.JournalDropped = j.journal.Dropped()
	default:
		st.JournalEvents = j.journalLen
		st.JournalDropped = j.journalDropped
		st.JournalKey = j.journalKey
	}
	return st
}
