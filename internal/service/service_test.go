package service_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"octopocs/internal/asm"
	"octopocs/internal/core"
	"octopocs/internal/corpus"
	"octopocs/internal/isa"
	"octopocs/internal/service"
	"octopocs/internal/testutil"
)

// crashingS builds a tiny S: main checks a two-byte magic, then the shared
// reader copies a length-prefixed record into a 4-byte buffer — the poc's
// oversized length overflows it.
func crashingS() *isa.Program {
	b := asm.NewBuilder("slow-s")
	g := b.Function("reader", 1)
	fd := g.Param(0)
	buf := g.Sys(isa.SysAlloc, g.Const(4))
	lb := g.Sys(isa.SysAlloc, g.Const(1))
	g.Sys(isa.SysRead, fd, lb, g.Const(1))
	g.Sys(isa.SysRead, fd, buf, g.Load(1, lb, 0))
	g.RetI(0)
	f := b.Function("main", 0)
	fd2 := f.Sys(isa.SysOpen)
	mb := f.Sys(isa.SysAlloc, f.Const(2))
	f.Sys(isa.SysRead, fd2, mb, f.Const(2))
	f.If(f.NeI(f.Load(1, mb, 0), 'Z'), func() { f.Exit(1) })
	f.If(f.NeI(f.Load(1, mb, 1), 'Z'), func() { f.Exit(1) })
	f.Call("reader", fd2)
	f.Exit(0)
	b.Entry("main")
	return b.MustBuild()
}

// slowPair pairs the fast-crashing S with a T whose main spins in an
// endless counting loop before (nominally) reaching the shared reader, so
// P2's symbolic execution grinds until the instruction budget — effectively
// forever with the budget below — unless cancelled.
func slowPair() *core.Pair {
	b := asm.NewBuilder("slow-t")
	g := b.Function("reader", 1)
	fd := g.Param(0)
	buf := g.Sys(isa.SysAlloc, g.Const(4))
	lb := g.Sys(isa.SysAlloc, g.Const(1))
	g.Sys(isa.SysRead, fd, lb, g.Const(1))
	g.Sys(isa.SysRead, fd, buf, g.Load(1, lb, 0))
	g.RetI(0)
	f := b.Function("main", 0)
	fd2 := f.Sys(isa.SysOpen)
	n := f.VarI(0)
	f.Forever(func() { f.Assign(n, f.AddI(n, 1)) })
	f.Call("reader", fd2)
	f.Exit(0)
	b.Entry("main")
	return &core.Pair{
		Name:     "slow",
		S:        crashingS(),
		T:        b.MustBuild(),
		PoC:      append([]byte("ZZ"), 12, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12),
		Lib:      map[string]bool{"reader": true},
		MaxSteps: 1 << 40,
	}
}

// waitRunning blocks until the job leaves the queue.
func waitRunning(t *testing.T, j *service.Job) {
	t.Helper()
	testutil.WaitFor(t, func() bool { return j.State() != service.JobQueued },
		10*time.Second, "job %s still queued", j.ID())
}

func TestSubmitWaitMatchesDirectVerify(t *testing.T) {
	// Pin the per-job frontier budget to 1 so the service report is
	// field-for-field comparable with a direct pipeline: the frontier
	// engine's Report is deterministic for any worker count, but its Stats
	// (steps, steals) legitimately vary with scheduling.
	svc := service.New(service.Config{Workers: 2, SymexWorkers: 1, CacheEntries: -1})
	defer svc.Shutdown(context.Background())

	for _, idx := range []int{1, 7, 9} {
		spec := corpus.ByIdx(idx)
		want, err := core.New(core.Config{SymexWorkers: 1}).Verify(corpus.ByIdx(idx).Pair)
		if err != nil {
			t.Fatalf("direct verify idx %d: %v", idx, err)
		}
		job, err := svc.Submit(spec.Pair)
		if err != nil {
			t.Fatalf("submit idx %d: %v", idx, err)
		}
		got, err := job.Wait(context.Background())
		if err != nil {
			t.Fatalf("wait idx %d: %v", idx, err)
		}
		want.Timings, got.Timings = core.PhaseTimings{}, core.PhaseTimings{}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("idx %d: service report diverged from direct verify\n got %+v\nwant %+v", idx, got, want)
		}
	}
}

// TestCacheHitByteIdenticalReports verifies, for every corpus pair, that a
// warm (cache-hit) run reproduces the cold run's report exactly — cached
// artifacts are pure functions of their inputs — and that the reuse is
// observable in both the per-job flags and the service counters.
func TestCacheHitByteIdenticalReports(t *testing.T) {
	svc := service.New(service.Config{Workers: 4})
	defer svc.Shutdown(context.Background())

	run := func() map[int]*core.Report {
		t.Helper()
		jobs := make(map[int]*service.Job)
		for _, spec := range corpus.All() {
			job, err := svc.Submit(spec.Pair)
			if err != nil {
				t.Fatalf("submit idx %d: %v", spec.Idx, err)
			}
			jobs[spec.Idx] = job
		}
		reps := make(map[int]*core.Report)
		for idx, job := range jobs {
			rep, err := job.Wait(context.Background())
			if err != nil {
				t.Fatalf("idx %d: %v", idx, err)
			}
			reps[idx] = rep
		}
		return reps
	}

	cold := run()
	warm := run()

	for _, spec := range corpus.All() {
		c, w := cold[spec.Idx], warm[spec.Idx]
		if !w.Timings.P1Cached || !w.Timings.P2Cached {
			t.Errorf("idx %d: warm run not served from cache (p1=%v p2=%v)",
				spec.Idx, w.Timings.P1Cached, w.Timings.P2Cached)
		}
		cc, ww := *c, *w
		cc.Timings, ww.Timings = core.PhaseTimings{}, core.PhaseTimings{}
		if !reflect.DeepEqual(&cc, &ww) {
			t.Errorf("idx %d: warm report differs from cold\ncold %+v\nwarm %+v", spec.Idx, cc, ww)
		}
	}

	st := svc.Stats()
	if st.P1Cache == nil || st.P2Cache == nil {
		t.Fatal("stats missing cache counters")
	}
	// The second sweep hits P1 and P2 for all 15 pairs; the first sweep
	// already reuses artifacts across pairs sharing S or T programs.
	if st.P1Cache.Hits < 15 {
		t.Errorf("P1 cache hits = %d, want >= 15", st.P1Cache.Hits)
	}
	if st.P2Cache.Hits < 15 {
		t.Errorf("P2 cache hits = %d, want >= 15", st.P2Cache.Hits)
	}
	if st.Completed != 30 {
		t.Errorf("completed = %d, want 30", st.Completed)
	}
}

// TestCancelMidP2 checks that cancelling a job stuck in symbolic execution
// returns promptly with a context error and leaves no goroutines behind.
func TestCancelMidP2(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)

	svc := service.New(service.Config{Workers: 2})
	job, err := svc.Submit(slowPair())
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, job)
	// Give the pipeline time to get deep into P2's symbolic execution.
	time.Sleep(100 * time.Millisecond)

	start := time.Now()
	job.Cancel()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err = job.Wait(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled job returned %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Errorf("cancellation took %v, want prompt return", d)
	}
	if st := job.State(); st != service.JobCancelled {
		t.Errorf("state = %v, want cancelled", st)
	}

	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// CheckGoroutineLeaks verifies the workers exited once the test returns.
}

func TestJobTimeout(t *testing.T) {
	svc := service.New(service.Config{Workers: 1, JobTimeout: 150 * time.Millisecond})
	defer svc.Shutdown(context.Background())

	job, err := svc.Submit(slowPair())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err = job.Wait(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out job returned %v, want context.DeadlineExceeded", err)
	}
	if st := job.State(); st != service.JobCancelled {
		t.Errorf("state = %v, want cancelled", st)
	}
}

// TestQueueFullRejects checks that a submission over capacity is rejected
// immediately rather than blocking the caller.
func TestQueueFullRejects(t *testing.T) {
	svc := service.New(service.Config{Workers: 1, QueueDepth: 1})
	defer svc.Shutdown(context.Background())

	running, err := svc.Submit(slowPair())
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, running)

	queued, err := svc.Submit(slowPair())
	if err != nil {
		t.Fatalf("second submit should queue: %v", err)
	}

	start := time.Now()
	_, err = svc.Submit(slowPair())
	if !errors.Is(err, service.ErrQueueFull) {
		t.Fatalf("third submit returned %v, want ErrQueueFull", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("rejection took %v, want immediate", d)
	}
	if st := svc.Stats(); st.Rejected != 1 {
		t.Errorf("rejected counter = %d, want 1", st.Rejected)
	}

	running.Cancel()
	queued.Cancel()
}

func TestShutdownDrainsInFlight(t *testing.T) {
	svc := service.New(service.Config{Workers: 2})
	var jobs []*service.Job
	for _, idx := range []int{1, 2, 9} {
		job, err := svc.Submit(corpus.ByIdx(idx).Pair)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, job := range jobs {
		if st := job.State(); st != service.JobDone {
			t.Errorf("job %s after drain: state %v, want done", job.ID(), st)
		}
	}
	if _, err := svc.Submit(corpus.ByIdx(1).Pair); !errors.Is(err, service.ErrShutdown) {
		t.Errorf("submit after shutdown returned %v, want ErrShutdown", err)
	}
}

func TestShutdownDeadlineCancelsJobs(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	job, err := svc.Submit(slowPair())
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, job)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := svc.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown returned %v, want DeadlineExceeded", err)
	}
	// Shutdown only returns after the workers observed the cancellation.
	if st := job.State(); st != service.JobCancelled {
		t.Errorf("job state after forced shutdown = %v, want cancelled", st)
	}
}
