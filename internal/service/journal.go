package service

// journal.go is the service side of the verdict provenance journal: every
// running job carries a journal.Recorder through its context, and when the
// job finishes the journal is encoded as JSONL, content-addressed, and
// persisted in the journal store — so "why did this job conclude that?"
// stays answerable after the run without retaining a live Recorder per job
// forever. The events endpoint (http.go) serves both forms transparently.

import (
	"octopocs/internal/journal"
)

// newJournal returns the recorder a job will carry, or nil when journaling
// is disabled.
func (s *Service) newJournal(id string) *journal.Recorder {
	if s.cfg.JournalCapacity < 0 {
		return nil
	}
	vrb := journal.VerbSummary
	if s.cfg.JournalVerbose {
		vrb = journal.VerbVerbose
	}
	return journal.New(id, journal.Options{Capacity: s.cfg.JournalCapacity, Verbosity: vrb})
}

// persistJournal closes a finished job's recorder and moves its events to
// the journal store as a content-addressed JSONL artifact, recording the
// key and counts on the job. Nil-tolerant: jobs that never ran (cancelled
// while queued) or ran with journaling disabled have nothing to persist.
func (s *Service) persistJournal(j *Job, rec *journal.Recorder) {
	if rec == nil {
		return
	}
	rec.Close()
	events := rec.Events()
	data, err := journal.MarshalJSONL(events)
	if err != nil {
		// Attrs are engine-built from strings and numbers, so this cannot
		// happen outside a programming error; keep the job usable anyway.
		s.log.Error("encode job journal", "job", j.id, "err", err.Error())
		return
	}
	key := journal.Key(data)
	if s.jrc != nil {
		s.jrc.Put(key, data)
	}
	// Record the key and only then detach the live recorder, all under the
	// job lock: a concurrent reader always resolves either the (closed)
	// live recorder or the persisted artifact, never neither.
	j.mu.Lock()
	j.journalKey = key
	j.journalLen = len(events)
	j.journalDropped = rec.Dropped()
	j.journal = nil
	j.mu.Unlock()
}

// jobJournal resolves a job's journal: the live recorder while the job
// runs (rec non-nil, poll with rec.Updated), else the events decoded from
// the persisted artifact. ok is false when journaling is disabled, the job
// never ran, or the artifact was evicted from the store.
func (s *Service) jobJournal(j *Job) (rec *journal.Recorder, events []journal.Event, ok bool) {
	j.mu.Lock()
	rec = j.journal
	key := j.journalKey
	j.mu.Unlock()
	if rec != nil {
		return rec, nil, true
	}
	if key == "" || s.jrc == nil {
		return nil, nil, false
	}
	v, hit := s.jrc.Get(key)
	if !hit {
		return nil, nil, false
	}
	data, isBytes := v.([]byte)
	if !isBytes {
		return nil, nil, false
	}
	events, err := journal.DecodeJSONL(data)
	if err != nil {
		s.log.Error("decode job journal", "job", j.id, "err", err.Error())
		return nil, nil, false
	}
	return nil, events, true
}

// JournalEvents returns the retained journal events of a job with
// Seq > after (0 returns all), live or persisted. ok is false when the job
// is unknown or no journal is available.
func (s *Service) JournalEvents(id string, after uint64) (events []journal.Event, ok bool) {
	j, found := s.Job(id)
	if !found {
		return nil, false
	}
	rec, events, ok := s.jobJournal(j)
	if !ok {
		return nil, false
	}
	if rec != nil {
		return rec.EventsAfter(after), true
	}
	if after > 0 {
		i := 0
		for i < len(events) && events[i].Seq <= after {
			i++
		}
		events = events[i:]
	}
	return events, true
}
