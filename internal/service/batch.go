package service

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"octopocs/internal/asm"
	"octopocs/internal/core"
)

// maxBatchJobs bounds one batch submission; larger workloads should use the
// clone-scan front end or split across batches.
const maxBatchJobs = 256

// BatchRequest is the POST /v1/batches body: many job submissions in one
// call, admitted atomically (all enqueued or none).
type BatchRequest struct {
	// Name labels the batch; defaults to its ID.
	Name string `json:"name,omitempty"`
	// Jobs are the submissions, each exactly a POST /v1/jobs body.
	Jobs []SubmitRequest `json:"jobs"`
}

// BatchItem maps one requested submission to the job that runs it. Requests
// that are content-identical to an earlier item of the same batch share that
// item's job (Deduped is set): the pair would hit the same artifacts anyway,
// so running it twice would only burn a queue slot.
type BatchItem struct {
	// Index is the position in the request's jobs array.
	Index int `json:"index"`
	// JobID drives this item.
	JobID string `json:"job_id"`
	// Deduped marks items served by a job created for an earlier item.
	Deduped bool `json:"deduped,omitempty"`
}

// Batch is one batch submission: the jobs it enqueued plus the dedup map.
// All methods are safe for concurrent use.
type Batch struct {
	id        string
	name      string
	submitted time.Time
	items     []BatchItem
	jobs      []*Job // unique jobs, in creation order
}

// ID returns the batch identifier assigned at submission.
func (b *Batch) ID() string { return b.id }

// BatchStatus is the JSON-facing snapshot of a batch.
type BatchStatus struct {
	ID        string    `json:"id"`
	Name      string    `json:"name"`
	Submitted time.Time `json:"submitted"`
	// State is "running" until every job is terminal, then "done".
	State string `json:"state"`
	// Total counts requested items; Unique counts distinct jobs after
	// deduplication; Done/Failed/Cancelled classify terminal jobs.
	Total     int `json:"total"`
	Unique    int `json:"unique"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	// Items maps request indices to jobs.
	Items []BatchItem `json:"items"`
}

// Snapshot renders the batch for status endpoints.
func (b *Batch) Snapshot() BatchStatus {
	st := BatchStatus{
		ID:        b.id,
		Name:      b.name,
		Submitted: b.submitted,
		Total:     len(b.items),
		Unique:    len(b.jobs),
		Items:     append([]BatchItem(nil), b.items...),
	}
	terminal := 0
	for _, j := range b.jobs {
		switch j.State() {
		case JobDone:
			st.Done++
			terminal++
		case JobFailed:
			st.Failed++
			terminal++
		case JobCancelled:
			st.Cancelled++
			terminal++
		}
	}
	if terminal == len(b.jobs) {
		st.State = "done"
	} else {
		st.State = "running"
	}
	return st
}

// pairFingerprint content-addresses a verification task for intra-batch
// deduplication: every input that influences the report participates.
func pairFingerprint(pair *core.Pair) string {
	h := sha256.New()
	io.WriteString(h, asm.Format(pair.S))
	io.WriteString(h, "|t:")
	io.WriteString(h, asm.Format(pair.T))
	h.Write(pair.PoC)
	libs := make([]string, 0, len(pair.Lib))
	for fn := range pair.Lib {
		libs = append(libs, fn)
	}
	sort.Strings(libs)
	for _, fn := range libs {
		fmt.Fprintf(h, "|lib:%s", fn)
	}
	fmt.Fprintf(h, "|ctx:%v|insize:%d|steps:%d", pair.CtxArgs, pair.InputSize, pair.MaxSteps)
	if pair.StaticPrune != nil {
		fmt.Fprintf(h, "|static:%v", *pair.StaticPrune)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// SubmitBatch enqueues many verifications atomically: either every unique
// pair fits the queue's free capacity and all are admitted, or nothing is
// enqueued and the whole batch is rejected (ErrQueueFull, ErrSaturated, or
// ErrShutdown) — a half-admitted batch would make the client re-submit the
// remainder and defeat deduplication. Content-identical pairs share one job.
func (s *Service) SubmitBatch(name string, pairs []*core.Pair) (*Batch, error) {
	if len(pairs) == 0 {
		return nil, errors.New("service: empty batch")
	}
	if len(pairs) > maxBatchJobs {
		return nil, fmt.Errorf("service: batch of %d jobs exceeds the %d-job limit", len(pairs), maxBatchJobs)
	}
	for i, p := range pairs {
		if p == nil {
			return nil, fmt.Errorf("service: batch job %d is nil", i)
		}
	}
	// Fingerprint outside the lock: hashing program texts is the expensive
	// part of admission and needs no service state.
	byFP := make(map[string]int, len(pairs)) // fingerprint → unique index
	uniquePairs := make([]*core.Pair, 0, len(pairs))
	uniqueIdx := make([]int, len(pairs)) // request index → unique index
	dedup := make([]bool, len(pairs))
	for i, p := range pairs {
		fp := pairFingerprint(p)
		if u, seen := byFP[fp]; seen {
			uniqueIdx[i] = u
			dedup[i] = true
			continue
		}
		byFP[fp] = len(uniquePairs)
		uniqueIdx[i] = len(uniquePairs)
		uniquePairs = append(uniquePairs, p)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.admitLocked(); err != nil {
		return nil, err
	}
	// Capacity is reserved for the whole batch under the lock: every other
	// enqueue path also holds s.mu, and workers only ever free slots, so
	// the newJobLocked loop below cannot hit a full queue.
	if free := cap(s.queue) - len(s.queue); len(uniquePairs) > free {
		s.rejectLocked(len(uniquePairs))
		return nil, fmt.Errorf("%w: batch needs %d slots, %d free", ErrQueueFull, len(uniquePairs), free)
	}
	jobs := make([]*Job, len(uniquePairs))
	for u, p := range uniquePairs {
		job, err := s.newJobLocked(p)
		if err != nil {
			// Unreachable by the capacity argument above; surface loudly
			// rather than half-admitting.
			for _, j := range jobs {
				if j != nil {
					j.Cancel()
				}
			}
			return nil, err
		}
		jobs[u] = job
	}
	s.nextBatchID++
	b := &Batch{
		id:        fmt.Sprintf("batch-%d", s.nextBatchID),
		name:      name,
		submitted: time.Now(),
		jobs:      jobs,
	}
	if b.name == "" {
		b.name = b.id
	}
	for i := range pairs {
		b.items = append(b.items, BatchItem{
			Index:   i,
			JobID:   jobs[uniqueIdx[i]].ID(),
			Deduped: dedup[i],
		})
	}
	s.batches[b.id] = b
	s.batchOrder = append(s.batchOrder, b.id)
	s.log.Info("batch submitted", "batch", b.id, "name", b.name,
		"jobs", len(pairs), "unique", len(jobs))
	return b, nil
}

// BatchByID returns a batch by ID.
func (s *Service) BatchByID(id string) (*Batch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.batches[id]
	return b, ok
}

// Batches snapshots every known batch in submission order.
func (s *Service) Batches() []BatchStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.batchOrder...)
	batches := make([]*Batch, 0, len(ids))
	for _, id := range ids {
		batches = append(batches, s.batches[id])
	}
	s.mu.Unlock()
	out := make([]BatchStatus, len(batches))
	for i, b := range batches {
		out[i] = b.Snapshot()
	}
	return out
}
