package service

import (
	"container/list"
	"sync"
)

// Store is the pluggable backend behind the phase-artifact cache. It is a
// superset of core.Cache (adding size introspection), so any Store can be
// installed on a pipeline via core.Pipeline.SetCaches. Implementations must
// be safe for concurrent use.
type Store interface {
	// Get returns the artifact stored under key, if any.
	Get(key string) (any, bool)
	// Put stores an artifact under key, evicting at its discretion.
	Put(key string, v any)
	// Len reports the number of live entries.
	Len() int
}

// CacheCounters is a point-in-time snapshot of one cache's accounting.
type CacheCounters struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// LRU is a fixed-capacity, least-recently-used Store with hit/miss/eviction
// accounting. A single mutex guards the whole structure: artifact lookups
// are tiny compared to the verifications they save, so finer-grained
// locking would buy nothing.
type LRU struct {
	mu     sync.Mutex
	max    int
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
	hits   uint64
	misses uint64
	evicts uint64
}

type lruEntry struct {
	key string
	val any
}

// NewLRU returns an LRU holding at most max entries (minimum 1).
func NewLRU(max int) *LRU {
	if max < 1 {
		max = 1
	}
	return &LRU{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the value stored under key and marks it most recently used.
func (c *LRU) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put stores v under key, evicting the least recently used entry when the
// cache is full.
func (c *LRU) Put(key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: v})
	if c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*lruEntry).key)
		c.evicts++
	}
}

// Len reports the number of live entries.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Counters snapshots the cache accounting.
func (c *LRU) Counters() CacheCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheCounters{Hits: c.hits, Misses: c.misses, Evictions: c.evicts, Entries: c.ll.Len()}
}
