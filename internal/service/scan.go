package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"octopocs/internal/asm"
	"octopocs/internal/clonedet"
	"octopocs/internal/core"
	"octopocs/internal/corpus"
	"octopocs/internal/isa"
)

// ScanState is the lifecycle position of a batch scan.
type ScanState int

// Scan states.
const (
	// ScanRunning: retrieval is done and candidate verifications are in
	// flight (or being enqueued).
	ScanRunning ScanState = iota + 1
	// ScanDone: every candidate reached a terminal verdict (or failed to
	// enqueue).
	ScanDone
)

// String renders the state.
func (s ScanState) String() string {
	switch s {
	case ScanRunning:
		return "running"
	case ScanDone:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// ScanTargetSpec is one inline target program of a scan request.
type ScanTargetSpec struct {
	// Key identifies the target in candidates; defaults to the program name.
	Key string `json:"key,omitempty"`
	// T is the assembled MIR program text (see internal/asm).
	T string `json:"t"`
}

// ScanRequest is the POST /v1/scan body: one source CVE fanned across a
// target corpus. The source is given inline (assembled MIR text, poc bytes,
// vulnerable function names) or as a built-in corpus row via corpus_idx; the
// target side is inline programs, the built-in 17-row corpus, or both.
type ScanRequest struct {
	// Name labels the scan; defaults to the source program name.
	Name string `json:"name,omitempty"`
	// S is the assembled MIR source program text.
	S string `json:"s,omitempty"`
	// PoC is the crashing input for S (JSON base64).
	PoC []byte `json:"poc,omitempty"`
	// Vuln lists the vulnerable (ℓ-side) function names of S.
	Vuln []string `json:"vuln,omitempty"`
	// Ep optionally fixes the entry-point function for candidate anchoring.
	Ep string `json:"ep,omitempty"`
	// FindEp derives Ep by crashing S with the PoC and taking the
	// bottom-most ℓ frame of the backtrace (overrides Ep on success).
	FindEp bool `json:"find_ep,omitempty"`
	// CorpusIdx sources the scan from a built-in corpus row (1-17): its S
	// program, PoC, and ℓ function set.
	CorpusIdx int `json:"corpus_idx,omitempty"`
	// Targets are inline target programs to index.
	Targets []ScanTargetSpec `json:"targets,omitempty"`
	// CorpusTargets additionally indexes all 17 built-in corpus targets
	// (keyed corpus/NN).
	CorpusTargets bool `json:"corpus_targets,omitempty"`
	// MinScore and TopK tune retrieval (see clonedet.Config).
	MinScore float64 `json:"min_score,omitempty"`
	TopK     int     `json:"top_k,omitempty"`
	// RetrieveOnly skips verification: the scan completes with ranked
	// candidates only.
	RetrieveOnly bool `json:"retrieve_only,omitempty"`
	// CtxArgs, InputSize and MaxSteps configure the candidate verifications
	// exactly as in SubmitRequest; corpus-sourced scans inherit the row's
	// values when these are unset.
	CtxArgs   []int `json:"ctx_args,omitempty"`
	InputSize int   `json:"input_size,omitempty"`
	MaxSteps  int64 `json:"max_steps,omitempty"`
}

// scanSource is the resolved source side of a scan.
type scanSource struct {
	name      string
	prog      *isa.Program
	poc       []byte
	vuln      []string
	ep        string
	findEp    bool
	ctxArgs   []int
	inputSize int
	maxSteps  int64
}

// buildSource resolves the request's source side.
func (r *ScanRequest) buildSource() (*scanSource, error) {
	src := &scanSource{
		name:      r.Name,
		poc:       r.PoC,
		vuln:      append([]string(nil), r.Vuln...),
		ep:        r.Ep,
		findEp:    r.FindEp,
		ctxArgs:   r.CtxArgs,
		inputSize: r.InputSize,
		maxSteps:  r.MaxSteps,
	}
	if r.CorpusIdx != 0 {
		spec := corpus.ByIdx(r.CorpusIdx)
		if spec == nil {
			return nil, fmt.Errorf("no corpus pair with index %d (valid: 1-17)", r.CorpusIdx)
		}
		src.prog = spec.Pair.S
		if len(src.poc) == 0 {
			src.poc = spec.Pair.PoC
		}
		if len(src.vuln) == 0 {
			for fn := range spec.Pair.Lib {
				src.vuln = append(src.vuln, fn)
			}
			sort.Strings(src.vuln)
		}
		if src.ctxArgs == nil {
			src.ctxArgs = spec.Pair.CtxArgs
		}
		if src.inputSize == 0 {
			src.inputSize = spec.Pair.InputSize
		}
		if src.maxSteps == 0 {
			src.maxSteps = spec.Pair.MaxSteps
		}
		if src.name == "" {
			src.name = spec.SName
		}
		return src, nil
	}
	if r.S == "" {
		return nil, errors.New("s program text is required (or corpus_idx)")
	}
	prog, err := asm.Parse(r.S)
	if err != nil {
		return nil, fmt.Errorf("parse s: %w", err)
	}
	src.prog = prog
	if len(src.vuln) == 0 {
		return nil, errors.New("vuln (the vulnerable function names) is required")
	}
	if src.name == "" {
		src.name = prog.Name
	}
	return src, nil
}

// buildTargets resolves the request's target corpus: inline programs plus,
// when requested, the built-in corpus rows.
func (r *ScanRequest) buildTargets() ([]clonedet.Target, map[string]*isa.Program, error) {
	var ts []clonedet.Target
	progs := make(map[string]*isa.Program)
	add := func(key string, prog *isa.Program) {
		ts = append(ts, clonedet.Target{Key: key, Prog: prog})
		progs[key] = prog
	}
	for i, t := range r.Targets {
		prog, err := asm.Parse(t.T)
		if err != nil {
			return nil, nil, fmt.Errorf("parse target %d: %w", i, err)
		}
		key := t.Key
		if key == "" {
			key = prog.Name
		}
		add(key, prog)
	}
	if r.CorpusTargets {
		for _, spec := range append(corpus.All(), corpus.StaticSet()...) {
			add(fmt.Sprintf("corpus/%02d", spec.Idx), spec.Pair.T)
		}
	}
	if len(ts) == 0 {
		return nil, nil, errors.New("no targets: give targets and/or corpus_targets")
	}
	return ts, progs, nil
}

// ScanCandidate is one ranked candidate with its verification outcome.
type ScanCandidate struct {
	clonedet.Candidate
	// JobID is the verification job driving this candidate ("" when
	// retrieval-only or when enqueueing failed).
	JobID string `json:"job_id,omitempty"`
	// Verdict/Type mirror the finished job's report.
	Verdict string `json:"verdict,omitempty"`
	Type    string `json:"type,omitempty"`
	// Confirmed is set when verification produced a reformed PoC that
	// triggers the vulnerability in this target.
	Confirmed bool `json:"confirmed,omitempty"`
	// Error carries the enqueue or verification error, if any.
	Error string `json:"error,omitempty"`
	// JournalEvents/JournalDropped summarize the candidate job's provenance
	// journal (see GET /v1/jobs/{id}/events for the events themselves).
	JournalEvents  int    `json:"journal_events,omitempty"`
	JournalDropped uint64 `json:"journal_dropped,omitempty"`
}

// Scan is one batch clone-scan: a retrieval pass plus the verification jobs
// it fanned out. All methods are safe for concurrent use.
type Scan struct {
	id        string
	name      string
	submitted time.Time
	stats     clonedet.IndexStats
	done      chan struct{}

	mu    sync.Mutex
	state ScanState
	ep    string
	cands []ScanCandidate
}

// ID returns the scan identifier assigned at submission.
func (sc *Scan) ID() string { return sc.id }

// Done returns a channel closed when every candidate is resolved.
func (sc *Scan) Done() <-chan struct{} { return sc.done }

// Wait blocks until the scan finishes or ctx expires.
func (sc *Scan) Wait(ctx context.Context) error {
	select {
	case <-sc.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ScanStatus is the JSON-facing snapshot of a scan.
type ScanStatus struct {
	ID        string              `json:"id"`
	Name      string              `json:"name"`
	State     string              `json:"state"`
	Submitted time.Time           `json:"submitted"`
	Ep        string              `json:"ep,omitempty"`
	Index     clonedet.IndexStats `json:"index"`
	// Confirmed counts candidates verified triggered so far.
	Confirmed int `json:"confirmed"`
	// JournalEvents/JournalDropped aggregate the per-candidate journal
	// accounting across the scan.
	JournalEvents  int             `json:"journal_events,omitempty"`
	JournalDropped uint64          `json:"journal_dropped,omitempty"`
	Candidates     []ScanCandidate `json:"candidates"`
}

// Snapshot renders the scan for status endpoints.
func (sc *Scan) Snapshot() ScanStatus {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	st := ScanStatus{
		ID:         sc.id,
		Name:       sc.name,
		State:      sc.state.String(),
		Submitted:  sc.submitted,
		Ep:         sc.ep,
		Index:      sc.stats,
		Candidates: append([]ScanCandidate(nil), sc.cands...),
	}
	for _, c := range sc.cands {
		if c.Confirmed {
			st.Confirmed++
		}
		st.JournalEvents += c.JournalEvents
		st.JournalDropped += c.JournalDropped
	}
	return st
}

// StartScan runs retrieval synchronously — indexing the request's targets
// and ranking candidates — then fans each candidate out as a verification
// job on the shared queue and returns the running scan. Retrieval errors
// (bad programs, unknown functions) surface here; per-candidate verification
// outcomes land on the scan as jobs finish. Candidates whose submission is
// rejected (queue full, shutdown) record the error instead of a verdict —
// the backpressure contract is per candidate, not per scan.
func (s *Service) StartScan(req *ScanRequest) (*Scan, error) {
	src, err := req.buildSource()
	if err != nil {
		return nil, err
	}
	targets, progs, err := req.buildTargets()
	if err != nil {
		return nil, err
	}
	if src.findEp {
		pair, perr := src.pair("", src.prog) // S-side only: crash S, read the backtrace
		if perr != nil {
			return nil, perr
		}
		ep, perr := s.pl.FindEp(pair)
		if perr != nil {
			return nil, fmt.Errorf("find ep: %w", perr)
		}
		src.ep = ep
	}
	ix := clonedet.NewIndex(clonedet.Config{
		MinScore: req.MinScore,
		TopK:     req.TopK,
		Workers:  s.cfg.Workers,
		Metrics:  s.met.clonedet,
		Cache:    s.cloneCache(),
	})
	if err := ix.AddAll(targets); err != nil {
		return nil, err
	}
	cands, err := ix.Scan(clonedet.Source{
		Name: src.name,
		Prog: src.prog,
		Vuln: src.vuln,
		Ep:   src.ep,
	})
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrShutdown
	}
	s.nextScanID++
	sc := &Scan{
		id:        fmt.Sprintf("scan-%d", s.nextScanID),
		name:      src.name,
		submitted: time.Now(),
		stats:     ix.Stats(),
		done:      make(chan struct{}),
		state:     ScanRunning,
		ep:        src.ep,
	}
	for _, c := range cands {
		sc.cands = append(sc.cands, ScanCandidate{Candidate: c})
	}
	s.scans[sc.id] = sc
	s.scanOrder = append(s.scanOrder, sc.id)
	s.mu.Unlock()
	s.log.Info("scan started", "scan", sc.id, "source", src.name,
		"targets", sc.stats.Targets, "candidates", len(cands), "ep", src.ep)

	if req.RetrieveOnly || len(sc.cands) == 0 {
		sc.finish()
		return sc, nil
	}

	jobs := make([]*Job, len(sc.cands))
	for i := range sc.cands {
		c := &sc.cands[i]
		pair, perr := src.pair(c.Target, progs[c.Target])
		if perr != nil {
			c.Error = perr.Error()
			continue
		}
		pair.Lib = make(map[string]bool, len(c.Lib))
		for _, fn := range c.Lib {
			pair.Lib[fn] = true
		}
		job, jerr := s.Submit(pair)
		if jerr != nil {
			c.Error = jerr.Error()
			continue
		}
		c.JobID = job.ID()
		jobs[i] = job
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer s.recoverToLog("scan.watcher")
		s.watchScan(sc, jobs)
	}()
	return sc, nil
}

// cloneCache adapts the persistent fingerprint store into the clonedet
// cache interface; nil (cache off) when no store bundle is configured. The
// typed-nil guard matters: wrapping a nil *artifact.Store in the interface
// would make clonedet call through it.
func (s *Service) cloneCache() clonedet.Cache {
	if s.cfg.Stores == nil || s.cfg.Stores.Clone == nil {
		return nil
	}
	return s.cfg.Stores.Clone
}

// pair assembles the verification task for one candidate target. With an
// empty target it builds the S-side-only pair FindEp needs.
func (ss *scanSource) pair(targetKey string, tProg *isa.Program) (*core.Pair, error) {
	if targetKey != "" && tProg == nil {
		return nil, fmt.Errorf("no program for target %q", targetKey)
	}
	if len(ss.poc) == 0 {
		return nil, errors.New("poc is required to verify candidates")
	}
	lib := make(map[string]bool, len(ss.vuln))
	for _, fn := range ss.vuln {
		lib[fn] = true
	}
	name := ss.name
	if targetKey != "" {
		name = fmt.Sprintf("%s=>%s", ss.name, targetKey)
	}
	if tProg == nil {
		tProg = ss.prog
	}
	return &core.Pair{
		Name:      name,
		S:         ss.prog,
		T:         tProg,
		PoC:       ss.poc,
		Lib:       lib,
		CtxArgs:   ss.ctxArgs,
		InputSize: ss.inputSize,
		MaxSteps:  ss.maxSteps,
	}, nil
}

// watchScan waits for every candidate job and folds its terminal state back
// into the scan, reporting each verdict to the clonedet counters.
func (s *Service) watchScan(sc *Scan, jobs []*Job) {
	for i, job := range jobs {
		if job == nil {
			continue
		}
		rep, err := job.Wait(context.Background())
		snap := job.Snapshot()
		sc.mu.Lock()
		c := &sc.cands[i]
		switch {
		case err != nil:
			c.Error = err.Error()
		case rep != nil:
			c.Verdict = rep.Verdict.String()
			c.Type = rep.Type.String()
			c.Confirmed = rep.Verdict == core.VerdictTriggered
		}
		c.JournalEvents = snap.JournalEvents
		c.JournalDropped = snap.JournalDropped
		sc.mu.Unlock()
		if err == nil && rep != nil && rep.Verdict != core.VerdictFailure {
			s.met.clonedet.ObserveVerdict(rep.Verdict == core.VerdictTriggered)
		}
	}
	sc.finish()
	snap := sc.Snapshot()
	s.log.Info("scan done", "scan", sc.id, "source", sc.name,
		"candidates", len(snap.Candidates), "confirmed", snap.Confirmed)
}

// finish moves the scan to its terminal state and releases waiters.
func (sc *Scan) finish() {
	sc.mu.Lock()
	if sc.state == ScanDone {
		sc.mu.Unlock()
		return
	}
	sc.state = ScanDone
	sc.mu.Unlock()
	close(sc.done)
}

// ScanByID returns a scan by ID.
func (s *Service) ScanByID(id string) (*Scan, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sc, ok := s.scans[id]
	return sc, ok
}

// Scans snapshots every known scan in submission order.
func (s *Service) Scans() []ScanStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.scanOrder...)
	scans := make([]*Scan, 0, len(ids))
	for _, id := range ids {
		scans = append(scans, s.scans[id])
	}
	s.mu.Unlock()
	out := make([]ScanStatus, len(scans))
	for i, sc := range scans {
		out[i] = sc.Snapshot()
	}
	return out
}
