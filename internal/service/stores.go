package service

import (
	"errors"
	"fmt"
	"log/slog"
	"path/filepath"
	"time"

	"octopocs/internal/artifact"
	"octopocs/internal/clonedet"
	"octopocs/internal/core"
	"octopocs/internal/faultinject"
)

// Per-class shares of the total disk budget. P2 artifacts dominate (program
// text plus observed edges, two per target and prune mode), P1 artifacts
// carry PoC-sized bunches, journals are bounded JSONL, fingerprints are
// small hash sets, absint value ranges are program-text-sized
// rebuild-on-decode payloads, and hybrid outcomes are poc'-sized JSON.
const (
	storeShareP1      = 0.20
	storeShareP2      = 0.36
	storeShareJournal = 0.18
	storeShareClone   = 0.12
	storeShareAbsint  = 0.08
	storeShareHybrid  = 0.06
)

// StoreOptions parameterizes OpenStores.
type StoreOptions struct {
	// Dir is the root store directory; one subdirectory per artifact class
	// (p1, p2, jr, ci, ai, hy) is created under it.
	Dir string
	// HotEntries sizes each class's in-memory hot tier;
	// artifact.DefaultHotEntries when 0.
	HotEntries int
	// DiskBudget bounds total disk use in bytes across all classes,
	// apportioned by the storeShare fractions; artifact.DefaultDiskBudget
	// when 0.
	DiskBudget int64
	// Faults threads the deterministic fault injector into every store.
	Faults *faultinject.Injector
	// Logger receives integrity-scan and I/O warnings; nil discards them.
	Logger *slog.Logger
}

// Stores bundles the per-class persistent artifact stores the service
// runs on: P1 crash-primitive artifacts, P2/static preparation artifacts,
// finished-job journals, and clone-detection fingerprints. Open with
// OpenStores, hand to Config.Stores, and Close after Shutdown — the caller
// owns the lifecycle, because a Stores may outlive any one Service (that is
// the point: warm restarts).
type Stores struct {
	// Dir is the root directory the stores live under.
	Dir string
	// P1 persists p1: artifacts; P2 persists p2: and ps: artifacts; Journal
	// persists jr: JSONL journals; Clone persists ci: fingerprints; AI
	// persists ai: abstract-interpretation value ranges; HY persists hy:
	// hybrid-campaign outcomes.
	P1, P2, Journal, Clone, AI, HY *artifact.Store
}

// OpenStores opens (or creates) the four per-class stores under opts.Dir,
// running each store's startup integrity scan. Entries persisted by an
// earlier process of the same store version become immediately servable.
func OpenStores(opts StoreOptions) (*Stores, error) {
	if opts.Dir == "" {
		return nil, errors.New("service: store directory is required")
	}
	budget := opts.DiskBudget
	if budget == 0 {
		budget = artifact.DefaultDiskBudget
	}
	st := &Stores{Dir: opts.Dir}
	open := func(sub string, share float64, codecs map[string]artifact.Codec) (*artifact.Store, error) {
		return artifact.Open(artifact.Options{
			Dir:        filepath.Join(opts.Dir, sub),
			HotEntries: opts.HotEntries,
			DiskBudget: int64(float64(budget) * share),
			Codecs:     codecs,
			Faults:     opts.Faults,
			Logger:     opts.Logger,
		})
	}
	var err error
	if st.P1, err = open("p1", storeShareP1, map[string]artifact.Codec{
		"p1": core.P1Codec{},
	}); err == nil {
		if st.P2, err = open("p2", storeShareP2, map[string]artifact.Codec{
			"p2": core.P2Codec{},
			"ps": core.StaticCodec{},
		}); err == nil {
			if st.Journal, err = open("jr", storeShareJournal, map[string]artifact.Codec{
				"jr": artifact.BytesCodec{},
			}); err == nil {
				if st.Clone, err = open("ci", storeShareClone, map[string]artifact.Codec{
					"ci": clonedet.FingerprintCodec{},
				}); err == nil {
					if st.AI, err = open("ai", storeShareAbsint, map[string]artifact.Codec{
						"ai": core.AbsintCodec{},
					}); err == nil {
						st.HY, err = open("hy", storeShareHybrid, map[string]artifact.Codec{
							"hy": core.HybridCodec{},
						})
					}
				}
			}
		}
	}
	if err != nil {
		st.Close()
		return nil, fmt.Errorf("service: open stores: %w", err)
	}
	return st, nil
}

// each visits the non-nil stores with their class names.
func (st *Stores) each(fn func(class string, s *artifact.Store)) {
	for _, c := range []struct {
		name  string
		store *artifact.Store
	}{
		{"p1", st.P1}, {"p2", st.P2}, {"jr", st.Journal}, {"ci", st.Clone}, {"ai", st.AI}, {"hy", st.HY},
	} {
		if c.store != nil {
			fn(c.name, c.store)
		}
	}
}

// Close closes every store. Safe on a partially opened bundle.
func (st *Stores) Close() error {
	if st == nil {
		return nil
	}
	st.each(func(_ string, s *artifact.Store) { s.Close() })
	return nil
}

// Saturated reports whether any store's disk tier recently failed a write;
// admission control answers 429 while it holds.
func (st *Stores) Saturated() bool {
	if st == nil {
		return false
	}
	sat := false
	st.each(func(_ string, s *artifact.Store) { sat = sat || s.Saturated() })
	return sat
}

// SaturationHold is how long a failed write keeps admission closed; served
// as the Retry-After advice on saturation 429s.
func (st *Stores) SaturationHold() time.Duration {
	return artifact.DefaultSaturationHold
}

// Counters snapshots every store's accounting, keyed by class.
func (st *Stores) Counters() map[string]artifact.Counters {
	if st == nil {
		return nil
	}
	out := make(map[string]artifact.Counters, 6)
	st.each(func(class string, s *artifact.Store) { out[class] = s.Counters() })
	return out
}
