package mirstatic

import (
	"sort"

	"octopocs/internal/journal"
)

// RecordProofs journals the analysis's dominator-proved dead regions: one
// static.proof event per function that has any, in sorted function order
// so the emission sequence is deterministic. Each event carries the folded
// branches and the proved-dead region block sets — the facts a reader
// needs to audit why the pruned CFG (and any statically-unreachable
// verdict) is sound. Nil-tolerant on both receivers.
func RecordProofs(rec *journal.Recorder, a *Analysis) {
	if rec == nil || a == nil {
		return
	}
	names := make([]string, 0, len(a.Funcs))
	for name, ff := range a.Funcs {
		if len(ff.Regions) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		ff := a.Funcs[name]
		folded := 0
		for _, t := range ff.Taken {
			if t >= 0 {
				folded++
			}
		}
		blocks := 0
		for _, r := range ff.Regions {
			blocks += len(r)
		}
		rec.Emit(journal.EvStaticProof, journal.Attrs{
			"fn":          name,
			"folded":      folded,
			"regions":     len(ff.Regions),
			"dead_blocks": blocks,
		})
	}
}
