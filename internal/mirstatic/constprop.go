package mirstatic

import "octopocs/internal/isa"

// cval is a flat constant lattice value: known c, or varies (bottom).
// "Unvisited" (top) is represented by a nil per-block fact, so the lattice
// never needs a third state inside the array.
type cval struct {
	known bool
	v     uint64
}

var varies = cval{}

func konst(v uint64) cval { return cval{known: true, v: v} }

// meet joins two lattice values: equal constants stay constant, anything
// else varies.
func meet(a, b cval) cval {
	if a.known && b.known && a.v == b.v {
		return a
	}
	return varies
}

// analyzeFunc runs sparse conditional constant propagation over one
// function: block-entry register facts flow only along edges that are
// possible under the facts seen so far, so constant-guarded regions never
// become live and their (possibly constant-relaxing) joins never pollute
// the facts. The concrete semantics mirrored here are exactly the VM's
// (wrapping 64-bit arithmetic, shifts >= 64 produce 0, division by zero
// faults): a register is reported constant only if it holds that value in
// every concrete execution reaching the block.
func analyzeFunc(f *isa.Function) *FuncFacts {
	n := len(f.Blocks)
	ff := &FuncFacts{
		Live:  make([]bool, n),
		Taken: make([]int, n),
	}
	for i := range ff.Taken {
		ff.Taken[i] = -1
	}
	if n == 0 {
		return ff
	}

	// facts[b] is the register file at b's entry; nil = not yet reached.
	facts := make([]*[isa.NumRegs]cval, n)
	entry := new([isa.NumRegs]cval)
	for r := 0; r < isa.NumRegs; r++ {
		if r < f.NParams {
			entry[r] = varies // arguments are unknown
		} else {
			entry[r] = konst(0) // the VM zero-initializes register files
		}
	}
	facts[0] = entry

	work := []int{0}
	inWork := make([]bool, n)
	inWork[0] = true

	flow := func(from *[isa.NumRegs]cval, to int) {
		if facts[to] == nil {
			cp := *from
			facts[to] = &cp
		} else {
			changed := false
			for r := 0; r < isa.NumRegs; r++ {
				m := meet(facts[to][r], from[r])
				if m != facts[to][r] {
					facts[to][r] = m
					changed = true
				}
			}
			if !changed {
				return
			}
		}
		if !inWork[to] {
			inWork[to] = true
			work = append(work, to)
		}
	}

	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[b] = false

		regs := *facts[b] // copy: transfer must not mutate the entry fact
		blk := f.Blocks[b]
		for i := range blk.Insts {
			applyTransfer(&blk.Insts[i], &regs)
		}

		term := blk.Terminator()
		switch term.Op {
		case isa.OpJmp:
			flow(&regs, term.ThenIdx)
		case isa.OpBr:
			if c := regs[term.A]; c.known {
				if c.v != 0 {
					flow(&regs, term.ThenIdx)
				} else {
					flow(&regs, term.ElseIdx)
				}
			} else {
				flow(&regs, term.ThenIdx)
				flow(&regs, term.ElseIdx)
			}
		default:
			// Ret, Trap and exiting syscalls have no successors.
		}
	}

	// The fixpoint only descends, so a single post-pass reads off the
	// final verdicts consistently.
	for b := range f.Blocks {
		if facts[b] == nil {
			continue // dead: never reached along surviving edges
		}
		ff.Live[b] = true
		term := f.Blocks[b].Terminator()
		if term.Op != isa.OpBr {
			continue
		}
		regs := *facts[b]
		for i := range f.Blocks[b].Insts {
			in := &f.Blocks[b].Insts[i]
			applyTransfer(in, &regs)
		}
		if c := regs[term.A]; c.known {
			if c.v != 0 {
				ff.Taken[b] = term.ThenIdx
			} else {
				ff.Taken[b] = term.ElseIdx
			}
		}
	}
	return ff
}

// applyTransfer is the straight-line transfer function used by the
// post-pass; it matches the in-loop switch above.
func applyTransfer(in *isa.Inst, regs *[isa.NumRegs]cval) {
	switch in.Op {
	case isa.OpConst:
		regs[in.Dst] = konst(uint64(in.Imm))
	case isa.OpMov:
		regs[in.Dst] = regs[in.A]
	case isa.OpBin:
		regs[in.Dst] = binFold(in.Bin, regs[in.A], regs[in.B])
	case isa.OpBinImm:
		regs[in.Dst] = binFold(in.Bin, regs[in.A], konst(uint64(in.Imm)))
	case isa.OpCmp:
		regs[in.Dst] = cmpFold(in.Cmp, regs[in.A], regs[in.B])
	case isa.OpCmpImm:
		regs[in.Dst] = cmpFold(in.Cmp, regs[in.A], konst(uint64(in.Imm)))
	case isa.OpLoad, isa.OpCall, isa.OpCallInd:
		regs[in.Dst] = varies
	case isa.OpSyscall:
		if in.Sys != isa.SysExit {
			regs[in.Dst] = varies
		}
	default:
		// Store and control transfers write no register.
	}
}

// binFold mirrors vm.binOp on the constant lattice. Division or modulo by
// a known zero faults at runtime; the result register is treated as
// varying, which keeps the successor facts a sound over-approximation of
// the (empty) set of executions that survive the fault.
func binFold(op isa.BinOp, a, b cval) cval {
	if !a.known || !b.known {
		return varies
	}
	switch op {
	case isa.Add:
		return konst(a.v + b.v)
	case isa.Sub:
		return konst(a.v - b.v)
	case isa.Mul:
		return konst(a.v * b.v)
	case isa.Div:
		if b.v == 0 {
			return varies
		}
		return konst(a.v / b.v)
	case isa.Mod:
		if b.v == 0 {
			return varies
		}
		return konst(a.v % b.v)
	case isa.And:
		return konst(a.v & b.v)
	case isa.Or:
		return konst(a.v | b.v)
	case isa.Xor:
		return konst(a.v ^ b.v)
	case isa.Shl:
		if b.v >= 64 {
			return konst(0)
		}
		return konst(a.v << b.v)
	case isa.Shr:
		if b.v >= 64 {
			return konst(0)
		}
		return konst(a.v >> b.v)
	default:
		return varies
	}
}

// cmpFold mirrors vm.cmpOp on the constant lattice.
func cmpFold(op isa.CmpOp, a, b cval) cval {
	if !a.known || !b.known {
		return varies
	}
	var ok bool
	switch op {
	case isa.Eq:
		ok = a.v == b.v
	case isa.Ne:
		ok = a.v != b.v
	case isa.Lt:
		ok = a.v < b.v
	case isa.Le:
		ok = a.v <= b.v
	case isa.Gt:
		ok = a.v > b.v
	case isa.Ge:
		ok = a.v >= b.v
	case isa.SLt:
		ok = int64(a.v) < int64(b.v)
	case isa.SLe:
		ok = int64(a.v) <= int64(b.v)
	default:
		return varies
	}
	if ok {
		return konst(1)
	}
	return konst(0)
}
