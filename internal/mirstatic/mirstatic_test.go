package mirstatic_test

import (
	"strings"
	"testing"

	"octopocs/internal/asm"
	"octopocs/internal/isa"
	"octopocs/internal/mirstatic"
)

// TestConstantFoldKillsGuardedRegion checks the tentpole behavior end to
// end on one function: a branch guarded by a compile-time zero folds, the
// guarded region dies, and ep becomes statically unreachable.
func TestConstantFoldKillsGuardedRegion(t *testing.T) {
	b := asm.NewBuilder("fold")
	ep := b.Function("ep", 0)
	ep.RetI(0)
	m := b.Function("main", 0)
	flag := m.Const(0)
	m.If(flag, func() {
		m.Call("ep")
	})
	m.Exit(0)
	b.Entry("main")
	prog := b.MustBuild()

	a, err := mirstatic.Analyze(prog)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if a.Summary.FoldedBranches == 0 {
		t.Error("expected at least one folded branch")
	}
	if a.Summary.DeadBlocks == 0 {
		t.Error("expected dead blocks from the folded guard")
	}
	if a.Summary.DeadRegions == 0 || a.Summary.DeadRegionBlocks == 0 {
		t.Errorf("expected a dominator-proved dead region, got summary %v", a.Summary)
	}
	if !a.EpUnreachable("ep") {
		t.Error("ep is only called under a constant-false guard; want statically unreachable")
	}
	if a.Reachable["ep"] {
		t.Error("ep must not be in the reachable-function closure")
	}
	// The dead call block must be reported dead, and the fold must point
	// at the surviving successor.
	mainFn := prog.Func("main")
	deadFound := false
	for blk := range mainFn.Blocks {
		if a.DeadBlock("main", blk) {
			deadFound = true
		}
	}
	if !deadFound {
		t.Error("no dead block reported in main")
	}
	folded := false
	for blk := range mainFn.Blocks {
		if taken, ok := a.BranchTaken("main", blk); ok {
			folded = true
			if a.DeadBlock("main", taken) {
				t.Errorf("folded branch at main:%d takes dead block %d", blk, taken)
			}
		}
	}
	if !folded {
		t.Error("no folded branch reported in main")
	}
}

// TestInputDependentBranchDoesNotFold is the negative control: a condition
// derived from attacker input must stay unfolded and keep ep reachable.
func TestInputDependentBranchDoesNotFold(t *testing.T) {
	b := asm.NewBuilder("live")
	ep := b.Function("ep", 0)
	ep.RetI(0)
	m := b.Function("main", 0)
	n := m.Sys(isa.SysArgLen)
	m.If(m.GtI(n, 4), func() {
		m.Call("ep")
	})
	m.Exit(0)
	b.Entry("main")
	prog := b.MustBuild()

	a, err := mirstatic.Analyze(prog)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if a.Summary.FoldedBranches != 0 {
		t.Errorf("input-dependent branch folded: %v", a.Summary)
	}
	if a.EpUnreachable("ep") {
		t.Error("ep reachable through a live branch reported unreachable (unsound)")
	}
}

// TestIndirectCallWidening checks the may-call-anything over-approximation:
// a reachable indirect call with an unresolvable (empty) function-table
// slot forces every function reachable, so ep can never be proved
// unreachable; with a fully resolved table that omits ep, the proof holds.
func TestIndirectCallWidening(t *testing.T) {
	build := func(table ...string) *isa.Program {
		b := asm.NewBuilder("widen")
		ep := b.Function("ep", 0)
		ep.RetI(0)
		h := b.Function("h", 0)
		h.RetI(0)
		m := b.Function("main", 0)
		idx := m.Sys(isa.SysArgLen)
		m.CallInd(idx)
		m.Exit(0)
		b.Entry("main")
		b.FuncTable(table...)
		return b.MustBuild()
	}

	withEmpty, err := mirstatic.Analyze(build("h", ""))
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if withEmpty.EpUnreachable("ep") {
		t.Error("unresolved functable slot must widen to may-call-anything; ep reported unreachable")
	}

	resolved, err := mirstatic.Analyze(build("h"))
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if !resolved.EpUnreachable("ep") {
		t.Error("fully resolved table without ep: want ep statically unreachable")
	}
	if !resolved.Reachable["h"] {
		t.Error("functable entry h must be reachable through the indirect call")
	}
}

// rawDiamond builds entry -> {a,b} -> join -> (ret) with explicit block
// indices 0..3 for precise dominator assertions.
func rawDiamond(t *testing.T) *isa.Program {
	t.Helper()
	fn := &isa.Function{
		Name:    "f",
		NParams: 1,
		Blocks: []*isa.Block{
			{Name: "entry", Insts: []isa.Inst{{Op: isa.OpBr, A: 0, Then: "a", Else: "b"}}},
			{Name: "a", Insts: []isa.Inst{{Op: isa.OpJmp, Then: "j"}}},
			{Name: "b", Insts: []isa.Inst{{Op: isa.OpJmp, Then: "j"}}},
			{Name: "j", Insts: []isa.Inst{{Op: isa.OpRet, A: 0}}},
		},
	}
	prog := &isa.Program{Name: "p", Entry: "f", Funcs: []*isa.Function{fn}}
	if err := prog.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return prog
}

func TestDominatorsDiamond(t *testing.T) {
	prog := rawDiamond(t)
	f := prog.Func("f")

	idom := mirstatic.Dominators(f)
	want := []int{0, 0, 0, 0}
	for b, w := range want {
		if idom[b] != w {
			t.Errorf("idom[%d] = %d, want %d", b, idom[b], w)
		}
	}
	ipdom := mirstatic.PostDominators(f)
	// Join post-dominates everything; exit-terminated join maps to -1.
	wantP := []int{3, 3, 3, -1}
	for b, w := range wantP {
		if ipdom[b] != w {
			t.Errorf("ipdom[%d] = %d, want %d", b, ipdom[b], w)
		}
	}

	a, err := mirstatic.Analyze(prog)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if !a.Dominates("f", 0, 3) || a.Dominates("f", 1, 3) {
		t.Error("entry must dominate join; a side arm must not")
	}
	if !a.PostDominates("f", 3, 0) || a.PostDominates("f", 1, 0) {
		t.Error("join must post-dominate entry; a side arm must not")
	}
	if got := a.MustPass("f"); len(got) != 1 || got[0] != 3 {
		t.Errorf("MustPass = %v, want [3]", got)
	}
}

func TestDominatorsUnreachableBlock(t *testing.T) {
	fn := &isa.Function{
		Name:    "f",
		NParams: 0,
		Blocks: []*isa.Block{
			{Name: "entry", Insts: []isa.Inst{{Op: isa.OpRet, A: 0}}},
			{Name: "orphan", Insts: []isa.Inst{{Op: isa.OpTrap, Imm: 0xFE}}},
		},
	}
	prog := &isa.Program{Name: "p", Entry: "f", Funcs: []*isa.Function{fn}}
	if err := prog.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	idom := mirstatic.Dominators(prog.Func("f"))
	if idom[0] != 0 || idom[1] != -1 {
		t.Errorf("idom = %v, want [0 -1]", idom)
	}
}

// TestLoopPostDominators checks the infinite-loop convention: a block that
// never reaches an exit has no post-dominator.
func TestLoopPostDominators(t *testing.T) {
	fn := &isa.Function{
		Name:    "f",
		NParams: 0,
		Blocks: []*isa.Block{
			{Name: "entry", Insts: []isa.Inst{{Op: isa.OpJmp, Then: "spin"}}},
			{Name: "spin", Insts: []isa.Inst{{Op: isa.OpJmp, Then: "spin"}}},
		},
	}
	prog := &isa.Program{Name: "p", Entry: "f", Funcs: []*isa.Function{fn}}
	if err := prog.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	ipdom := mirstatic.PostDominators(prog.Func("f"))
	if ipdom[0] != -1 && ipdom[0] != 1 {
		t.Errorf("ipdom[entry] = %d", ipdom[0])
	}
	if ipdom[1] != -1 {
		t.Errorf("ipdom[spin] = %d, want -1 (no exit reachable)", ipdom[1])
	}
}

// TestVerifierRejectsMalformed checks that structural errors surface as a
// complete diagnostic list and make Analyze fail fast.
func TestVerifierRejectsMalformed(t *testing.T) {
	callee := &isa.Function{
		Name:    "cal",
		NParams: 2,
		Blocks:  []*isa.Block{{Name: "b0", Insts: []isa.Inst{{Op: isa.OpRet, A: 0}}}},
	}
	fn := &isa.Function{
		Name:    "f",
		NParams: 0,
		Blocks: []*isa.Block{
			{Name: "b0", Insts: []isa.Inst{
				{Op: isa.OpConst, Dst: 250, Imm: 1},              // register out of range
				{Op: isa.OpCall, Callee: "cal", Args: nil},       // arity mismatch
				{Op: isa.OpCall, Callee: "nope"},                 // unknown callee... arity irrelevant
				{Op: isa.OpLoad, Dst: 1, A: 2, Size: 3},          // bad width
				{Op: isa.OpSyscall, Sys: isa.SysRead, Args: nil}, // syscall arity
				{Op: isa.OpRet, A: 0},
			}},
		},
	}
	prog := &isa.Program{Name: "bad", Entry: "f", Funcs: []*isa.Function{fn, callee}}
	if err := prog.Link(); err != nil {
		t.Fatalf("Link: %v", err)
	}
	ds := mirstatic.Verify(prog)
	errs := 0
	for _, d := range ds {
		if d.Sev == mirstatic.SevError {
			errs++
		}
	}
	if errs < 5 {
		t.Errorf("want >= 5 errors, got %d: %v", errs, ds)
	}
	if _, err := mirstatic.Analyze(prog); err == nil {
		t.Fatal("Analyze accepted a malformed program")
	} else if !strings.Contains(err.Error(), "malformed") {
		t.Errorf("unexpected error text: %v", err)
	}
}

// TestVerifierWarnsOnPossiblyUndefinedRead checks the SevWarn channel: the
// VM defines unwritten registers as zero, so the read is legal, Analyze
// succeeds, and the finding lands in Warnings.
func TestVerifierWarnsOnPossiblyUndefinedRead(t *testing.T) {
	fn := &isa.Function{
		Name:    "f",
		NParams: 1,
		Blocks: []*isa.Block{
			{Name: "b0", Insts: []isa.Inst{
				{Op: isa.OpMov, Dst: 1, A: 7}, // r7 never written
				{Op: isa.OpRet, A: 1},
			}},
		},
	}
	prog := &isa.Program{Name: "warny", Entry: "f", Funcs: []*isa.Function{fn}}
	if err := prog.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	a, err := mirstatic.Analyze(prog)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(a.Warnings) == 0 {
		t.Fatal("want a read-before-write warning")
	}
	if a.Warnings[0].Sev != mirstatic.SevWarn || !strings.Contains(a.Warnings[0].Msg, "r7") {
		t.Errorf("unexpected warning: %v", a.Warnings[0])
	}
	// Params are defined on entry: reading r0 must not warn.
	for _, w := range a.Warnings {
		if strings.Contains(w.Msg, "r0 ") {
			t.Errorf("param read warned: %v", w)
		}
	}
}

// TestFoldMirrorsVMArithmetic spot-checks the edge semantics the folder
// must share with the VM: wrapping multiply, shift >= 64, and division by
// a known zero staying unfolded.
func TestFoldMirrorsVMArithmetic(t *testing.T) {
	b := asm.NewBuilder("arith")
	ep := b.Function("ep", 0)
	ep.RetI(0)
	m := b.Function("main", 0)
	big := m.Const(-1) // 0xffff_ffff_ffff_ffff
	wrap := m.MulI(big, 2)
	// (2^64-1)*2 wraps to 2^64-2, nonzero: the guard folds to taken.
	m.If(m.NeI(wrap, 0), func() {
		m.Call("ep")
	})
	shifted := m.BinI(isa.Shl, m.Const(1), 64) // shift >= 64 yields 0
	m.If(shifted, func() {
		m.Call("ep") // dead: guard is a constant zero
	})
	m.Exit(0)
	b.Entry("main")
	prog := b.MustBuild()

	a, err := mirstatic.Analyze(prog)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if a.Summary.FoldedBranches != 2 {
		t.Errorf("want both guards folded, got %v", a.Summary)
	}
	if a.EpUnreachable("ep") {
		t.Error("first guard folds to taken; ep must stay reachable")
	}

	// Division by a known zero faults at runtime; the folder must not
	// pretend to know the result.
	b2 := asm.NewBuilder("div0")
	m2 := b2.Function("main", 0)
	q := m2.BinI(isa.Div, m2.Const(4), 0)
	m2.If(q, func() {
		m2.Exit(1)
	})
	m2.Exit(0)
	b2.Entry("main")
	a2, err := mirstatic.Analyze(b2.MustBuild())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if a2.Summary.FoldedBranches != 0 {
		t.Errorf("div-by-zero guard folded: %v", a2.Summary)
	}
}

// TestSCCPBeatsStraightReachability: the guarded region's join must keep
// the constant it would lose under plain all-edges propagation — the
// sparse-conditional part of the analysis.
func TestSCCPBeatsStraightReachability(t *testing.T) {
	b := asm.NewBuilder("sccp")
	ep := b.Function("ep", 0)
	ep.RetI(0)
	m := b.Function("main", 0)
	x := m.VarI(7)
	m.If(m.Const(0), func() {
		m.AssignI(x, 1) // dead write: must not reach the join
	})
	// x is still exactly 7 here; the second guard folds dead too.
	m.If(m.NeI(x, 7), func() {
		m.Call("ep")
	})
	m.Exit(0)
	b.Entry("main")
	prog := b.MustBuild()

	a, err := mirstatic.Analyze(prog)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if a.Summary.FoldedBranches != 2 {
		t.Errorf("want both guards folded (dead write ignored at join), got %v", a.Summary)
	}
	if !a.EpUnreachable("ep") {
		t.Error("ep guarded by x != 7 with x == 7 on every live path; want unreachable")
	}
}

// TestAbsintStrengthensFolding pins the abstract-interpretation layer: an
// even-stride loop leaves the parity guard open under the flat constant
// lattice, but the interval∧congruence ranges fold it, kill the guarded
// call, and prove ep statically unreachable — with the extra proofs counted
// separately in the summary.
func TestAbsintStrengthensFolding(t *testing.T) {
	b := asm.NewBuilder("evenstride")
	ep := b.Function("ep", 0)
	ep.RetI(0)
	m := b.Function("main", 0)
	n := m.Const(100)
	i := m.VarI(0)
	m.While(func() isa.Reg { return m.Cmp(isa.Lt, i, n) }, func() {
		m.Assign(i, m.AddI(i, 2))
	})
	m.If(m.NeI(m.AndI(i, 1), 0), func() { // i is even: provably false
		m.Call("ep")
	})
	m.Exit(0)
	b.Entry("main")
	prog := b.MustBuild()

	plain, err := mirstatic.Analyze(prog)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if plain.EpUnreachable("ep") {
		t.Fatal("constant propagation alone should not decide the parity guard")
	}
	if plain.Summary.AbsintFolded != 0 || plain.Summary.AbsintDead != 0 || plain.Ranges != nil {
		t.Fatalf("absint-off analysis carries absint state: %v", plain.Summary)
	}

	a, err := mirstatic.AnalyzeOpts(prog, mirstatic.Options{Absint: true})
	if err != nil {
		t.Fatalf("AnalyzeOpts: %v", err)
	}
	if a.Ranges == nil {
		t.Fatal("strengthened analysis did not retain the absint result")
	}
	if a.Summary.AbsintFolded == 0 {
		t.Errorf("parity guard not counted as absint-folded: %v", a.Summary)
	}
	if a.Summary.AbsintDead == 0 {
		t.Errorf("guarded call block not counted as absint-dead: %v", a.Summary)
	}
	if !a.EpUnreachable("ep") {
		t.Error("ep guarded by a provably-false parity check; want unreachable")
	}
	folded := false
	for blk := range prog.Func("main").Blocks {
		if taken, ok := a.BranchTaken("main", blk); ok {
			folded = true
			if a.DeadBlock("main", taken) {
				t.Errorf("folded branch at main:%d takes dead block %d", blk, taken)
			}
		}
	}
	if !folded {
		t.Error("no folded branch reported in main")
	}
	if !strings.Contains(a.Summary.String(), "absint-folded=") {
		t.Errorf("summary string omits absint counters: %s", a.Summary)
	}
	// A precomputed result may be supplied (the pipeline's cached artifact).
	pre, err := mirstatic.AnalyzeOpts(prog, mirstatic.Options{Absint: true, Ranges: a.Ranges})
	if err != nil {
		t.Fatalf("AnalyzeOpts(precomputed): %v", err)
	}
	if pre.Summary != a.Summary {
		t.Errorf("precomputed ranges diverge: %v vs %v", pre.Summary, a.Summary)
	}
}
