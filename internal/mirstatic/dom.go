package mirstatic

import "octopocs/internal/isa"

// staticSuccs returns the unfolded static successors of block b in f.
func staticSuccs(f *isa.Function, b int) []int {
	term := f.Blocks[b].Terminator()
	switch term.Op {
	case isa.OpJmp:
		return []int{term.ThenIdx}
	case isa.OpBr:
		if term.ThenIdx == term.ElseIdx {
			return []int{term.ThenIdx}
		}
		return []int{term.ThenIdx, term.ElseIdx}
	default:
		// Ret, Trap and exiting syscalls have no successors.
		return nil
	}
}

// Dominators computes the immediate-dominator tree of f's unfolded static
// CFG with the iterative algorithm of Cooper, Harvey and Kennedy. The
// result maps each block to its immediate dominator; the entry block maps
// to itself, and blocks unreachable from the entry map to -1.
func Dominators(f *isa.Function) []int {
	n := len(f.Blocks)
	succs := make([][]int, n)
	for b := 0; b < n; b++ {
		succs[b] = staticSuccs(f, b)
	}
	return idomTree(n, 0, succs)
}

// PostDominators computes the immediate-post-dominator tree of f: the
// dominator tree of the reversed CFG rooted at a virtual exit that joins
// every exit block (ret, trap, or exit syscall). IPdom[b] == -1 when b's
// immediate post-dominator is the virtual exit itself, or when b cannot
// reach any exit (an infinite loop).
func PostDominators(f *isa.Function) []int {
	n := len(f.Blocks)
	// Reverse graph over n real nodes plus virtual exit node n: every edge
	// b->s (and b->exit for terminal blocks) becomes s->b.
	rev := make([][]int, n+1)
	for b := 0; b < n; b++ {
		ss := staticSuccs(f, b)
		if len(ss) == 0 {
			rev[n] = append(rev[n], b)
			continue
		}
		for _, s := range ss {
			rev[s] = append(rev[s], b)
		}
	}
	idom := idomTree(n+1, n, rev)
	out := make([]int, n)
	for b := 0; b < n; b++ {
		if idom[b] == n || idom[b] < 0 {
			out[b] = -1
		} else {
			out[b] = idom[b]
		}
	}
	return out
}

// idomTree runs the CHK iterative dominator algorithm on an arbitrary
// graph given as successor lists, rooted at root. Nodes unreachable from
// root get idom -1; the root maps to itself.
func idomTree(n, root int, succs [][]int) []int {
	// Reverse post-order from root.
	order := make([]int, 0, n)
	seen := make([]bool, n)
	var dfs func(int)
	dfs = func(u int) {
		seen[u] = true
		for _, v := range succs[u] {
			if !seen[v] {
				dfs(v)
			}
		}
		order = append(order, u)
	}
	dfs(root)
	// order is post-order; reverse it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, u := range order {
		rpoNum[u] = i
	}
	preds := make([][]int, n)
	for u := 0; u < n; u++ {
		if !seen[u] {
			continue
		}
		for _, v := range succs[u] {
			preds[v] = append(preds[v], u)
		}
	}

	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[root] = root
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, u := range order {
			if u == root {
				continue
			}
			newIdom := -1
			for _, p := range preds[u] {
				if idom[p] < 0 {
					continue // not yet processed or unreachable
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom >= 0 && idom[u] != newIdom {
				idom[u] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// dominates walks the idom tree upward from y looking for x. The
// convention matches Dominators/PostDominators: a node dominates itself,
// and -1 entries (unreachable, or virtual-exit children) dominate nothing.
func dominates(idom []int, x, y int) bool {
	if x < 0 || y < 0 || x >= len(idom) || y >= len(idom) || idom[y] < 0 {
		return false
	}
	for {
		if y == x {
			return true
		}
		next := idom[y]
		if next < 0 || next == y {
			return false
		}
		y = next
	}
}

// deadRegions derives, for every folded branch in a live block, the region
// proved dead by the dominator argument: if the never-taken successor d is
// itself dead after folding, then every block dominated by d in the
// unfolded CFG is dead too (each of its entry paths must pass through d).
// The per-region accounting feeds telemetry and -v diagnostics.
func deadRegions(f *isa.Function, ff *FuncFacts) [][]int {
	var regions [][]int
	for b := range f.Blocks {
		if !ff.Live[b] || ff.Taken[b] < 0 {
			continue
		}
		term := f.Blocks[b].Terminator()
		dead := term.ElseIdx
		if ff.Taken[b] == term.ElseIdx {
			dead = term.ThenIdx
		}
		if dead == ff.Taken[b] || ff.Live[dead] {
			continue // both arms coincide, or another path keeps d alive
		}
		var region []int
		for x := range f.Blocks {
			if dominates(ff.Idom, dead, x) && !ff.Live[x] {
				region = append(region, x)
			}
		}
		if len(region) > 0 {
			regions = append(regions, region)
		}
	}
	return regions
}
