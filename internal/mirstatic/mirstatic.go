// Package mirstatic is the static pre-analysis layer that runs before P2:
// it verifies MIR well-formedness, folds constant branches, eliminates
// statically dead blocks, computes dominator/post-dominator trees, and
// over-approximates interprocedural reachability so the pipeline can emit a
// sound "statically-unreachable" verdict without spending any P2 symbolic
// execution, and so the P2 distance maps and frontier never route through
// provably dead regions. Everything here is a conservative over-
// approximation of the concrete VM semantics used by P4: a block reported
// dead is dead on every input, and ep reported unreachable is unreachable
// even when unresolved indirect-call slots are treated as may-call-anything.
//
// Concurrency: Analyze is a pure function of an immutable linked
// isa.Program; the returned Analysis is immutable after construction and
// safe for unsynchronized concurrent use by any number of readers (it is
// shared between cfg construction and every symex worker).
package mirstatic

import (
	"fmt"

	"octopocs/internal/absint"
	"octopocs/internal/isa"
)

// FuncFacts holds the per-function results of the static analysis.
type FuncFacts struct {
	// Live reports, per block index, whether the block is reachable from
	// the function entry along edges that survive constant branch folding.
	// Dead blocks cannot execute on any input (given the VM's zero-
	// initialized register file and the folded branch conditions).
	Live []bool
	// Taken is the folded successor of each block's terminator: for a
	// conditional branch whose condition is a compile-time constant it is
	// the block index that is always taken; -1 everywhere else.
	Taken []int
	// Idom is the immediate-dominator tree of the *unfolded* static CFG:
	// Idom[entry] == entry (the root), Idom[b] == -1 for blocks that are
	// unreachable even before folding. See Dominators.
	Idom []int
	// IPdom is the immediate post-dominator tree; IPdom[b] == -1 when b's
	// only post-dominator is the virtual exit or b cannot reach an exit.
	// See PostDominators.
	IPdom []int
	// Regions are the dead regions proved by the dominator argument: for
	// each folded branch, the blocks dominated by the never-taken
	// successor. Each region is a set of block indices, all dead.
	Regions [][]int
}

// Summary aggregates whole-program counters for telemetry and reports.
type Summary struct {
	Funcs            int `json:"funcs"`
	Blocks           int `json:"blocks"`
	LiveBlocks       int `json:"live_blocks"`
	DeadBlocks       int `json:"dead_blocks"`
	FoldedBranches   int `json:"folded_branches"`
	DeadRegions      int `json:"dead_regions"`
	DeadRegionBlocks int `json:"dead_region_blocks"`
	ReachableFuncs   int `json:"reachable_funcs"`
	Warnings         int `json:"warnings"`
	// AbsintFolded counts branches the interval∧congruence layer decided
	// that constant propagation alone could not; AbsintDead counts blocks it
	// additionally proved unreachable. Both are zero when the layer is off.
	AbsintFolded int `json:"absint_folded,omitempty"`
	AbsintDead   int `json:"absint_dead,omitempty"`
}

// Options parameterizes AnalyzeOpts.
type Options struct {
	// Absint enables the abstract-interpretation strengthening layer: the
	// interval∧congruence value ranges from internal/absint decide branches
	// (and kill blocks) that the flat constant lattice cannot, e.g. the
	// parity guard after an even-stride loop.
	Absint bool
	// Ranges optionally supplies a precomputed absint result (e.g. the
	// pipeline's cached ai: artifact); when nil and Absint is set, the
	// analysis is run here.
	Ranges *absint.Result
}

// Analysis is the immutable result of Analyze. It implements the
// cfg.Pruner contract (DeadBlock, BranchTaken) consumed by the pruned CFG
// build and the symex frontier.
type Analysis struct {
	Prog  *isa.Program
	Funcs map[string]*FuncFacts
	// Warnings are the non-fatal verifier diagnostics (possibly-undefined
	// register reads). Fatal diagnostics make Analyze return an error.
	Warnings []Diagnostic
	// Reachable is the over-approximated set of functions reachable from
	// the program entry through live blocks, with unresolved indirect-call
	// slots widened to may-call-anything.
	Reachable map[string]bool
	// Ranges is the interval∧congruence analysis that strengthened this
	// result; nil when Options.Absint was off.
	Ranges  *absint.Result
	Summary Summary
}

// Analyze verifies prog and computes the full static analysis with default
// options (no abstract-interpretation strengthening). It returns an error
// carrying the verifier diagnostics when the program is malformed; warnings
// are collected on the Analysis instead.
func Analyze(prog *isa.Program) (*Analysis, error) {
	return AnalyzeOpts(prog, Options{})
}

// AnalyzeOpts verifies prog and computes the full static analysis under
// explicit options.
func AnalyzeOpts(prog *isa.Program, opts Options) (*Analysis, error) {
	diags := Verify(prog)
	var warns []Diagnostic
	for _, d := range diags {
		if d.Sev == SevError {
			return nil, &VerifyError{Prog: prog.Name, Diags: diags}
		}
		warns = append(warns, d)
	}
	a := &Analysis{
		Prog:      prog,
		Funcs:     make(map[string]*FuncFacts, len(prog.Funcs)),
		Warnings:  warns,
		Reachable: make(map[string]bool),
	}
	if opts.Absint {
		a.Ranges = opts.Ranges
		if a.Ranges == nil {
			a.Ranges = absint.Analyze(prog)
		}
	}
	for _, f := range prog.Funcs {
		ff := analyzeFunc(f)
		if a.Ranges != nil {
			a.strengthen(f, ff)
		}
		ff.Idom = Dominators(f)
		ff.IPdom = PostDominators(f)
		ff.Regions = deadRegions(f, ff)
		a.Funcs[f.Name] = ff

		a.Summary.Funcs++
		a.Summary.Blocks += len(f.Blocks)
		for b := range f.Blocks {
			if ff.Live[b] {
				a.Summary.LiveBlocks++
			} else {
				a.Summary.DeadBlocks++
			}
			if ff.Taken[b] >= 0 {
				a.Summary.FoldedBranches++
			}
		}
		a.Summary.DeadRegions += len(ff.Regions)
		for _, r := range ff.Regions {
			a.Summary.DeadRegionBlocks += len(r)
		}
	}
	a.computeReachable()
	a.Summary.ReachableFuncs = len(a.Reachable)
	a.Summary.Warnings = len(warns)
	return a, nil
}

// strengthen merges the interval∧congruence facts into one function's
// constant-propagation facts: absint-proved branch directions fold branches
// the flat lattice left open, absint-unreachable blocks die, and liveness is
// recomputed over the surviving edges so newly folded branches kill their
// dead arms transitively. Soundness: absint proofs hold on every concrete
// execution (pinned by the differential fuzz target), so folding them is
// exactly as safe as folding a compile-time constant condition.
func (a *Analysis) strengthen(f *isa.Function, ff *FuncFacts) {
	n := len(f.Blocks)
	if n == 0 {
		return
	}
	for b := 0; b < n; b++ {
		if ff.Taken[b] >= 0 {
			continue
		}
		if taken, ok := a.Ranges.BranchProved(f.Name, b); ok {
			ff.Taken[b] = taken
			a.Summary.AbsintFolded++
		}
	}
	// Recompute liveness from the entry over folded edges, never entering a
	// block absint proved unreachable. This is exactly the edge set the
	// constant-propagation fixpoint explored, minus absint's extra kills.
	live := make([]bool, n)
	work := []int{0}
	live[0] = true
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		visit := func(to int) {
			if live[to] || a.Ranges.Unreachable(f.Name, to) {
				return
			}
			live[to] = true
			work = append(work, to)
		}
		term := f.Blocks[b].Terminator()
		switch term.Op {
		case isa.OpJmp:
			visit(term.ThenIdx)
		case isa.OpBr:
			if ff.Taken[b] >= 0 {
				visit(ff.Taken[b])
			} else {
				visit(term.ThenIdx)
				visit(term.ElseIdx)
			}
		default:
			// Ret, Trap and exiting syscalls have no successors.
		}
	}
	for b := 0; b < n; b++ {
		if ff.Live[b] && !live[b] {
			a.Summary.AbsintDead++
		}
		ff.Live[b] = ff.Live[b] && live[b]
	}
}

// DeadBlock reports whether block is statically unreachable within fn.
// Unknown functions or out-of-range blocks are conservatively live.
func (a *Analysis) DeadBlock(fn string, block int) bool {
	ff := a.Funcs[fn]
	if ff == nil || block < 0 || block >= len(ff.Live) {
		return false
	}
	return !ff.Live[block]
}

// BranchTaken reports the folded successor of the conditional branch
// terminating (fn, block), when its condition is a compile-time constant.
// The second result is false when the branch is not statically decided.
func (a *Analysis) BranchTaken(fn string, block int) (int, bool) {
	ff := a.Funcs[fn]
	if ff == nil || block < 0 || block >= len(ff.Taken) || ff.Taken[block] < 0 {
		return 0, false
	}
	return ff.Taken[block], true
}

// Dominates reports whether block x dominates block y in fn's unfolded
// static CFG (every path from the function entry to y passes through x).
func (a *Analysis) Dominates(fn string, x, y int) bool {
	ff := a.Funcs[fn]
	if ff == nil {
		return false
	}
	return dominates(ff.Idom, x, y)
}

// PostDominates reports whether block x post-dominates block y in fn
// (every path from y to a function exit passes through x).
func (a *Analysis) PostDominates(fn string, x, y int) bool {
	ff := a.Funcs[fn]
	if ff == nil {
		return false
	}
	return dominates(ff.IPdom, x, y)
}

// MustPass returns the blocks every terminating execution of fn passes
// through: the post-dominators of the entry block, in entry-to-exit order.
// These are the chokepoints a bunch placement or scheduling pass can pin.
func (a *Analysis) MustPass(fn string) []int {
	ff := a.Funcs[fn]
	if ff == nil || len(ff.IPdom) == 0 {
		return nil
	}
	var out []int
	for b := ff.IPdom[0]; b >= 0; b = ff.IPdom[b] {
		out = append(out, b)
	}
	// ipdom chains run exit-ward; present them entry-to-exit.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// EpUnreachable reports whether ep is provably unreachable from the program
// entry. It is sound with respect to the concrete VM: direct calls resolve
// by name, indirect calls are widened to every non-empty function-table
// slot, and if any reachable indirect call could dispatch through an
// unresolvable (empty) slot the whole table is widened to may-call-anything
// (in which case nothing is unreachable and this returns false). Call sites
// inside statically dead blocks are discounted — the dominator regions
// prove no execution enters them.
func (a *Analysis) EpUnreachable(ep string) bool {
	return !a.Reachable[ep]
}

// computeReachable closes the over-approximated callgraph from the entry
// function over live blocks.
func (a *Analysis) computeReachable() {
	entry := a.Prog.Entry
	if a.Prog.Func(entry) == nil {
		return
	}
	work := []string{entry}
	a.Reachable[entry] = true
	widened := false
	add := func(name string) {
		if name == "" || a.Reachable[name] || a.Prog.Func(name) == nil {
			return
		}
		a.Reachable[name] = true
		work = append(work, name)
	}
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		f := a.Prog.Func(fn)
		ff := a.Funcs[fn]
		for b, blk := range f.Blocks {
			if ff != nil && !ff.Live[b] {
				continue
			}
			for i := range blk.Insts {
				in := &blk.Insts[i]
				switch in.Op {
				case isa.OpCall:
					add(in.Callee)
				case isa.OpCallInd:
					for _, name := range a.Prog.FuncTable {
						if name == "" {
							// An unresolvable slot may call anything:
							// widen to every defined function, once.
							if !widened {
								widened = true
								for _, g := range a.Prog.Funcs {
									add(g.Name)
								}
							}
							continue
						}
						add(name)
					}
				default:
					// No other opcode transfers control to a function.
				}
			}
		}
	}
}

// String renders the summary in one line for -v output and traces.
func (s Summary) String() string {
	out := fmt.Sprintf("funcs=%d blocks=%d live=%d dead=%d folded=%d regions=%d region-blocks=%d reach-funcs=%d warns=%d",
		s.Funcs, s.Blocks, s.LiveBlocks, s.DeadBlocks, s.FoldedBranches,
		s.DeadRegions, s.DeadRegionBlocks, s.ReachableFuncs, s.Warnings)
	if s.AbsintFolded > 0 || s.AbsintDead > 0 {
		out += fmt.Sprintf(" absint-folded=%d absint-dead=%d", s.AbsintFolded, s.AbsintDead)
	}
	return out
}
