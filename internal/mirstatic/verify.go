package mirstatic

import (
	"fmt"
	"strings"

	"octopocs/internal/isa"
)

// Severity grades a verifier diagnostic.
type Severity int

const (
	// SevError marks a malformed program: running it would panic the VM
	// or symex mid-flight, so the pipeline rejects it up front.
	SevError Severity = iota
	// SevWarn marks legal-but-suspicious MIR, such as a register that may
	// be read before any instruction writes it (the VM defines such reads
	// as zero, but hand-written MIR rarely means that).
	SevWarn
)

func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warn"
}

// Diagnostic is one verifier finding, anchored to a program point.
type Diagnostic struct {
	Sev Severity
	Loc isa.Loc
	Msg string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Sev, d.Loc, d.Msg)
}

// VerifyError wraps the full diagnostic list of a malformed program.
type VerifyError struct {
	Prog  string
	Diags []Diagnostic
}

func (e *VerifyError) Error() string {
	var errs []string
	for _, d := range e.Diags {
		if d.Sev == SevError {
			errs = append(errs, d.String())
		}
	}
	return fmt.Sprintf("mirstatic: program %s is malformed: %s", e.Prog, strings.Join(errs, "; "))
}

// Verify checks prog for well-formedness and returns every finding instead
// of stopping at the first, so a malformed guest program fails fast with a
// complete picture. It subsumes isa.Validate's structural checks (non-empty
// blocks, single trailing terminator, in-range branch targets, call and
// syscall arity, operator and width ranges) and adds register-file checks
// Validate does not perform: all register operands must be below
// isa.NumRegs, and reads that can happen before any write are flagged as
// warnings. prog must already be linked (Program.Link or Validate).
func Verify(prog *isa.Program) []Diagnostic {
	var ds []Diagnostic
	errf := func(loc isa.Loc, format string, args ...any) {
		ds = append(ds, Diagnostic{Sev: SevError, Loc: loc, Msg: fmt.Sprintf(format, args...)})
	}
	if prog.Entry == "" || prog.Func(prog.Entry) == nil {
		errf(isa.Loc{}, "entry function %q is not defined", prog.Entry)
	}
	for i, name := range prog.FuncTable {
		if name != "" && prog.Func(name) == nil {
			errf(isa.Loc{}, "functable[%d] names unknown function %q", i, name)
		}
	}
	for _, f := range prog.Funcs {
		ds = append(ds, verifyFunc(prog, f)...)
	}
	return ds
}

func verifyFunc(prog *isa.Program, f *isa.Function) []Diagnostic {
	var ds []Diagnostic
	errf := func(loc isa.Loc, format string, args ...any) {
		ds = append(ds, Diagnostic{Sev: SevError, Loc: loc, Msg: fmt.Sprintf(format, args...)})
	}
	if f.NParams < 0 || f.NParams > isa.NumRegs {
		errf(isa.Loc{Func: f.Name}, "parameter count %d out of range [0,%d]", f.NParams, isa.NumRegs)
	}
	if len(f.Blocks) == 0 {
		errf(isa.Loc{Func: f.Name}, "function has no blocks")
		return ds
	}
	nb := len(f.Blocks)
	for b, blk := range f.Blocks {
		if len(blk.Insts) == 0 {
			errf(isa.Loc{Func: f.Name, Block: b}, "empty basic block %q", blk.Name)
			continue
		}
		for i := range blk.Insts {
			in := &blk.Insts[i]
			loc := isa.Loc{Func: f.Name, Block: b, Inst: i}
			if last := i == len(blk.Insts)-1; in.IsTerminator() != last {
				if last {
					errf(loc, "block %q does not end in a terminator", blk.Name)
				} else {
					errf(loc, "terminator %v in the middle of block %q", in.Op, blk.Name)
				}
			}
			ds = append(ds, verifyInst(prog, f, in, loc, nb)...)
		}
	}
	ds = append(ds, verifyDefiniteAssignment(f)...)
	return ds
}

// verifyInst checks one instruction: operand register ranges, resolved
// jump/branch targets, call arity against the callee (direct) or every
// non-empty function-table entry (indirect), syscall arity, and operator
// and access-width ranges.
func verifyInst(prog *isa.Program, f *isa.Function, in *isa.Inst, loc isa.Loc, nb int) []Diagnostic {
	var ds []Diagnostic
	errf := func(format string, args ...any) {
		ds = append(ds, Diagnostic{Sev: SevError, Loc: loc, Msg: fmt.Sprintf(format, args...)})
	}
	reg := func(what string, r isa.Reg) {
		if int(r) >= isa.NumRegs {
			errf("%s register r%d out of range (file has %d registers)", what, r, isa.NumRegs)
		}
	}
	// Operand shape per opcode.
	switch in.Op {
	case isa.OpConst:
		reg("dst", in.Dst)
	case isa.OpMov:
		reg("dst", in.Dst)
		reg("src", in.A)
	case isa.OpBin, isa.OpCmp:
		reg("dst", in.Dst)
		reg("lhs", in.A)
		reg("rhs", in.B)
	case isa.OpBinImm, isa.OpCmpImm:
		reg("dst", in.Dst)
		reg("lhs", in.A)
	case isa.OpLoad:
		reg("dst", in.Dst)
		reg("addr", in.A)
	case isa.OpStore:
		reg("addr", in.A)
		reg("val", in.B)
	case isa.OpJmp:
		if in.ThenIdx < 0 || in.ThenIdx >= nb {
			errf("jmp target %q (index %d) out of range", in.Then, in.ThenIdx)
		}
	case isa.OpBr:
		reg("cond", in.A)
		if in.ThenIdx < 0 || in.ThenIdx >= nb {
			errf("br then-target %q (index %d) out of range", in.Then, in.ThenIdx)
		}
		if in.ElseIdx < 0 || in.ElseIdx >= nb {
			errf("br else-target %q (index %d) out of range", in.Else, in.ElseIdx)
		}
	case isa.OpCall:
		reg("dst", in.Dst)
		callee := prog.Func(in.Callee)
		if callee == nil {
			errf("call to unknown function %q", in.Callee)
		} else if len(in.Args) != callee.NParams {
			errf("call %s: got %d args, want %d", in.Callee, len(in.Args), callee.NParams)
		}
	case isa.OpCallInd:
		reg("dst", in.Dst)
		reg("idx", in.A)
		if len(prog.FuncTable) == 0 {
			errf("indirect call in a program with an empty function table")
		}
		for _, name := range prog.FuncTable {
			if name == "" || prog.Func(name) == nil {
				continue
			}
			if got, want := len(in.Args), prog.Func(name).NParams; got != want {
				errf("indirect call: %d args but functable entry %q takes %d", got, name, want)
			}
		}
	case isa.OpRet:
		reg("val", in.A)
	case isa.OpTrap:
	case isa.OpSyscall:
		reg("dst", in.Dst)
		if want, ok := sysArity[in.Sys]; !ok {
			errf("unknown syscall %d", in.Sys)
		} else if len(in.Args) != want {
			errf("syscall %v: got %d args, want %d", in.Sys, len(in.Args), want)
		}
	default:
		errf("unknown opcode %d", in.Op)
	}
	for _, r := range in.Args {
		reg("arg", r)
	}
	switch in.Op {
	case isa.OpBin, isa.OpBinImm:
		if in.Bin < isa.Add || in.Bin > isa.Shr {
			errf("invalid binary operator %d", in.Bin)
		}
	case isa.OpCmp, isa.OpCmpImm:
		if in.Cmp < isa.Eq || in.Cmp > isa.SLe {
			errf("invalid comparison operator %d", in.Cmp)
		}
	case isa.OpLoad, isa.OpStore:
		switch in.Size {
		case 1, 2, 4, 8:
		default:
			errf("invalid access width %d", in.Size)
		}
	default:
		// Other opcodes carry no operator or width field to validate.
	}
	return ds
}

// sysArity mirrors the VM's syscall arity table (isa keeps its copy
// unexported).
var sysArity = map[isa.Sys]int{
	isa.SysOpen:    0,
	isa.SysRead:    3,
	isa.SysSeek:    2,
	isa.SysTell:    1,
	isa.SysSize:    1,
	isa.SysMMap:    1,
	isa.SysAlloc:   1,
	isa.SysFree:    1,
	isa.SysWrite:   2,
	isa.SysExit:    1,
	isa.SysArgRead: 2,
	isa.SysArgLen:  0,
}

// verifyDefiniteAssignment runs a forward must-be-assigned dataflow over
// the static CFG and warns about register reads that can execute before
// any write. The VM defines such reads to yield zero, so this is SevWarn,
// not SevError; it exists to catch operand typos in hand-written MIR.
func verifyDefiniteAssignment(f *isa.Function) []Diagnostic {
	n := len(f.Blocks)
	if n == 0 {
		return nil
	}
	// in[b] = bitset of registers definitely written on every path to b.
	words := (isa.NumRegs + 63) / 64
	in := make([][]uint64, n)
	in[0] = make([]uint64, words)
	for r := 0; r < f.NParams && r < isa.NumRegs; r++ {
		in[0][r/64] |= 1 << (r % 64)
	}
	work := []int{0}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := make([]uint64, words)
		copy(out, in[b])
		for i := range f.Blocks[b].Insts {
			if d, ok := instDst(&f.Blocks[b].Insts[i]); ok && int(d) < isa.NumRegs {
				out[int(d)/64] |= 1 << (int(d) % 64)
			}
		}
		for _, s := range staticSuccs(f, b) {
			if in[s] == nil {
				cp := make([]uint64, words)
				copy(cp, out)
				in[s] = cp
				work = append(work, s)
				continue
			}
			changed := false
			for w := 0; w < words; w++ {
				m := in[s][w] & out[w]
				if m != in[s][w] {
					in[s][w] = m
					changed = true
				}
			}
			if changed {
				work = append(work, s)
			}
		}
	}

	var ds []Diagnostic
	for b := range f.Blocks {
		if in[b] == nil {
			continue // unreachable: nothing to report
		}
		def := make([]uint64, words)
		copy(def, in[b])
		has := func(r isa.Reg) bool {
			return int(r) < isa.NumRegs && def[int(r)/64]&(1<<(int(r)%64)) != 0
		}
		for i := range f.Blocks[b].Insts {
			inst := &f.Blocks[b].Insts[i]
			for _, r := range instSrcs(inst) {
				if !has(r) {
					ds = append(ds, Diagnostic{
						Sev: SevWarn,
						Loc: isa.Loc{Func: f.Name, Block: b, Inst: i},
						Msg: fmt.Sprintf("r%d may be read before it is written (reads as 0)", r),
					})
				}
			}
			if d, ok := instDst(inst); ok && int(d) < isa.NumRegs {
				def[int(d)/64] |= 1 << (int(d) % 64)
			}
		}
	}
	return ds
}

// instDst reports the register an instruction writes, if any.
func instDst(in *isa.Inst) (isa.Reg, bool) {
	switch in.Op {
	case isa.OpConst, isa.OpMov, isa.OpBin, isa.OpBinImm, isa.OpCmp,
		isa.OpCmpImm, isa.OpLoad, isa.OpCall, isa.OpCallInd:
		return in.Dst, true
	case isa.OpSyscall:
		if in.Sys == isa.SysExit {
			return 0, false
		}
		return in.Dst, true
	default:
		// Store and control transfers write no register.
		return 0, false
	}
}

// instSrcs lists the registers an instruction reads.
func instSrcs(in *isa.Inst) []isa.Reg {
	var out []isa.Reg
	switch in.Op {
	case isa.OpMov, isa.OpBinImm, isa.OpCmpImm, isa.OpLoad, isa.OpRet, isa.OpBr:
		out = append(out, in.A)
	case isa.OpBin, isa.OpCmp, isa.OpStore:
		out = append(out, in.A, in.B)
	case isa.OpCallInd:
		out = append(out, in.A)
	default:
		// Const, Jmp, Call, Syscall and Trap read only Args (if anything).
	}
	out = append(out, in.Args...)
	return out
}
