package doccheck

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"testing"
)

// phaseRef matches a reference to a paper phase: "P1".."P4", including
// compounds like "P1–P4" or "P3.3".
var phaseRef = regexp.MustCompile(`\bP[1-4]\b`)

// internalDir locates internal/ relative to this source file, so the lint
// works regardless of the working directory the test runner uses.
func internalDir(t *testing.T) string {
	t.Helper()
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	return filepath.Dir(filepath.Dir(self))
}

// TestEveryInternalPackageDocumented enforces the documentation contract of
// the engine room: every package under internal/ must carry a package doc
// comment that (a) maps the package to the paper phase(s) P1–P4 it serves
// (or explicitly relates it to them) and (b) states its concurrency
// contract behind a "Concurrency:" marker. Removing either fails CI.
func TestEveryInternalPackageDocumented(t *testing.T) {
	root := internalDir(t)
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatalf("read %s: %v", root, err)
	}
	checked := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		pkg := e.Name()
		t.Run(pkg, func(t *testing.T) {
			fset := token.NewFileSet()
			pkgs, err := parser.ParseDir(fset, filepath.Join(root, pkg), nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			var doc string
			for name, p := range pkgs {
				if len(name) > len("_test") && name[len(name)-len("_test"):] == "_test" {
					continue
				}
				for _, f := range p.Files {
					if f.Doc != nil && len(f.Doc.Text()) > len(doc) {
						doc = f.Doc.Text()
					}
				}
			}
			if doc == "" {
				t.Fatalf("package %s has no package doc comment", pkg)
			}
			if !phaseRef.MatchString(doc) {
				t.Errorf("package %s doc does not reference a paper phase (P1–P4)", pkg)
			}
			if !regexp.MustCompile(`(?m)^Concurrency:`).MatchString(doc) {
				t.Errorf("package %s doc has no \"Concurrency:\" contract paragraph", pkg)
			}
		})
		checked++
	}
	// Guard against the walk silently checking nothing.
	if checked < 15 {
		t.Fatalf("only %d internal packages found; expected the full engine room", checked)
	}
}
