// Package doccheck is the repository's documentation lint: a test that
// fails CI when any internal package loses its package doc comment, its
// mapping to the paper phases P1–P4, or its stated concurrency contract.
// It keeps the engine-room documentation from rotting as the code moves.
// The same contract (plus the goroutine-cancellation check) runs as a vet
// tool via internal/lint and cmd/octolint; this package stays as the
// test-harness entry point so a plain `go test ./...` enforces it too.
//
// Concurrency: the lint is a read-only parse of the source tree; the test
// may run concurrently with anything.
package doccheck
