package vm

import (
	"testing"

	"octopocs/internal/isa"
)

func TestMemoryAccessors(t *testing.T) {
	m := NewMemory()
	a := m.Alloc(16)
	b := m.Map([]byte{1, 2, 3})

	regions := m.Regions()
	if len(regions) != 2 {
		t.Fatalf("regions = %d, want 2", len(regions))
	}
	if regions[0].Base != a || regions[1].Base != b {
		t.Error("region bases wrong")
	}
	if !regions[1].ReadOnly {
		t.Error("mapping must be read-only")
	}
	if regions[0].End() != a+16 {
		t.Errorf("End() = %#x, want %#x", regions[0].End(), a+16)
	}
}

func TestMemoryReadWriteBytes(t *testing.T) {
	m := NewMemory()
	a := m.Alloc(8)

	if fault := m.WriteBytes(a, []byte{9, 8, 7}); fault != nil {
		t.Fatalf("WriteBytes: %v", fault)
	}
	out, fault := m.ReadBytes(a, 3)
	if fault != nil {
		t.Fatalf("ReadBytes: %v", fault)
	}
	if out[0] != 9 || out[2] != 7 {
		t.Errorf("ReadBytes = %v", out)
	}
	// The returned slice is a copy: mutating it must not touch memory.
	out[0] = 0xEE
	again, _ := m.ReadBytes(a, 1)
	if again[0] != 9 {
		t.Error("ReadBytes returned a live view")
	}

	if fault := m.WriteBytes(a+6, []byte{1, 2, 3}); fault == nil || fault.kind != CrashOOB {
		t.Errorf("straddling WriteBytes fault = %v", fault)
	}
	if _, fault := m.ReadBytes(a+6, 3); fault == nil || fault.kind != CrashOOB {
		t.Errorf("straddling ReadBytes fault = %v", fault)
	}
	if fault := m.WriteBytes(0x10, []byte{1}); fault == nil || fault.kind != CrashNull {
		t.Errorf("null WriteBytes fault = %v", fault)
	}
}

func TestMemoryLoadStoreWidths(t *testing.T) {
	m := NewMemory()
	a := m.Alloc(8)
	if fault := m.Store(a, 8, 0x1122334455667788); fault != nil {
		t.Fatal(fault)
	}
	for _, tt := range []struct {
		size uint8
		want uint64
	}{{1, 0x88}, {2, 0x7788}, {4, 0x55667788}, {8, 0x1122334455667788}} {
		v, fault := m.Load(a, tt.size)
		if fault != nil {
			t.Fatal(fault)
		}
		if v != tt.want {
			t.Errorf("Load size %d = %#x, want %#x", tt.size, v, tt.want)
		}
	}
}

func TestHangCarriesBacktrace(t *testing.T) {
	// Hangs must report where the budget ran out so ep discovery works
	// for the CWE-835 class.
	prog := retLoopProgram(t)
	out := New(prog, Config{MaxSteps: 500}).Run()
	if out.Status != StatusHang {
		t.Fatalf("status = %v, want hang", out.Status)
	}
	if out.Crash == nil || out.Crash.Kind != CrashHang {
		t.Fatalf("hang crash = %v, want CrashHang", out.Crash)
	}
	if len(out.Crash.Backtrace) == 0 || out.Crash.Backtrace[0].Func != "main" {
		t.Errorf("hang backtrace = %v", out.Crash.Funcs())
	}
	if !out.Crashed() {
		t.Error("hang must count as crashed for ℓ verification")
	}
}

// retLoopProgram builds main{ spin: jmp spin }.
func retLoopProgram(t *testing.T) *isa.Program {
	t.Helper()
	p := &isa.Program{
		Name:  "spin",
		Entry: "main",
		Funcs: []*isa.Function{{
			Name: "main",
			Blocks: []*isa.Block{{
				Name:  "spin",
				Insts: []isa.Inst{{Op: isa.OpJmp, Then: "spin"}},
			}},
		}},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}
