package vm

import "octopocs/internal/telemetry"

// Metrics is the optional counter sink for concrete execution. Counters are
// flushed once per Run from the machine's local step count — never touched
// per instruction — so an instrumented VM runs at uninstrumented speed. A
// nil *Metrics (and nil counters within one) is a valid no-op sink.
type Metrics struct {
	// Runs counts completed Machine.Run calls.
	Runs *telemetry.Counter
	// Insts counts instructions retired across all runs.
	Insts *telemetry.Counter
	// Crashes counts runs that ended in a crash.
	Crashes *telemetry.Counter
	// Hangs counts runs that exhausted their step budget.
	Hangs *telemetry.Counter
}

// observe flushes one finished run into the counters.
func (m *Metrics) observe(out *Outcome) {
	if m == nil {
		return
	}
	m.Runs.Inc()
	m.Insts.Add(uint64(out.Steps))
	switch out.Status {
	case StatusCrash:
		m.Crashes.Inc()
	case StatusHang:
		m.Hangs.Inc()
	}
}
