// Package vm executes MIR programs concretely. It plays the role Intel PIN
// plays in the paper: a deterministic interpreter that exposes instrumentation
// hooks for every instruction, memory access, call, return and syscall, plus
// crash reporting with backtraces.
//
// Crashes are not modeled with a special "vulnerability" opcode: they surface
// from ordinary memory-safety violations (out-of-bounds or use-after-free
// accesses, null dereferences, division by zero, writes to read-only
// mappings), from explicit traps, or from exceeding the instruction budget
// (the hang analog of CWE-835 infinite loops). The taint engine of P1
// observes through these hooks, and P4 replays the reformed PoC here for
// the final verdict.
//
// Concurrency: a VM instance (and any Hooks installed on it) is confined
// to one goroutine for its whole run; programs and inputs are read-only, so
// any number of VMs may execute the same Program concurrently.
package vm

import (
	"fmt"

	"octopocs/internal/isa"
)

// Status classifies how a run ended.
type Status int

// Run statuses.
const (
	StatusExit    Status = iota + 1 // clean exit (SysExit or return from entry)
	StatusCrash                     // memory fault, trap, or bad indirect call
	StatusHang                      // instruction budget exhausted
	StatusStopped                   // cooperative stop signal observed mid-run
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case StatusExit:
		return "exit"
	case StatusCrash:
		return "crash"
	case StatusHang:
		return "hang"
	case StatusStopped:
		return "stopped"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// CrashKind classifies a crash.
type CrashKind int

// Crash kinds.
const (
	CrashNull    CrashKind = iota + 1 // access below the null guard page
	CrashOOB                          // access outside any live region
	CrashUAF                          // access to a freed region
	CrashROWrite                      // write to a read-only file mapping
	CrashDiv                          // division or modulo by zero
	CrashTrap                         // explicit trap instruction
	CrashBadCall                      // indirect call through a bad table slot
	CrashHang                         // instruction budget exhausted (CWE-835 analog)
)

// String renders the crash kind.
func (k CrashKind) String() string {
	switch k {
	case CrashNull:
		return "null-deref"
	case CrashOOB:
		return "out-of-bounds"
	case CrashUAF:
		return "use-after-free"
	case CrashROWrite:
		return "readonly-write"
	case CrashDiv:
		return "div-by-zero"
	case CrashTrap:
		return "trap"
	case CrashBadCall:
		return "bad-indirect-call"
	case CrashHang:
		return "hang"
	default:
		return fmt.Sprintf("crash(%d)", int(k))
	}
}

// StackEntry is one backtrace frame: the function and the location of the
// call site in its caller (zero Loc for the entry function).
type StackEntry struct {
	Func     string
	CallSite isa.Loc
}

// Crash describes a crashing run: what faulted, where, and the full call
// stack at the time (the paper's "backtrace function" used to find ep).
type Crash struct {
	Kind CrashKind
	Loc  isa.Loc
	// Addr is the faulting address for memory crashes.
	Addr uint64
	// Code is the trap code for CrashTrap.
	Code int64
	// Backtrace lists the call stack outermost-first; the last entry is
	// the function that faulted.
	Backtrace []StackEntry
}

// String renders a one-line crash summary.
func (c *Crash) String() string {
	return fmt.Sprintf("%s at %s (addr=%#x)", c.Kind, c.Loc, c.Addr)
}

// Funcs returns the backtrace function names outermost-first.
func (c *Crash) Funcs() []string {
	names := make([]string, len(c.Backtrace))
	for i, e := range c.Backtrace {
		names[i] = e.Func
	}
	return names
}

// Outcome is the result of a run.
type Outcome struct {
	Status   Status
	ExitCode uint64
	// Crash is non-nil for StatusCrash and StatusHang (a hang reports
	// where the budget ran out, with CrashHang kind, so that the
	// infinite-loop vulnerability class still yields a backtrace).
	Crash *Crash
	// Steps is the number of instructions executed.
	Steps int64
	// Output is everything the program wrote via SysWrite.
	Output []byte
}

// Crashed reports whether the run ended abnormally (crash or hang).
func (o *Outcome) Crashed() bool {
	return o.Status == StatusCrash || o.Status == StatusHang
}

// CrashedIn reports whether the run crashed while executing one of the named
// functions (matching the innermost backtrace frame).
func (o *Outcome) CrashedIn(funcs map[string]bool) bool {
	if o.Crash == nil {
		return false
	}
	return funcs[o.Crash.Loc.Func]
}

// String renders a one-line outcome summary.
func (o *Outcome) String() string {
	switch o.Status {
	case StatusExit:
		return fmt.Sprintf("exit(%d) after %d steps", o.ExitCode, o.Steps)
	case StatusCrash:
		return fmt.Sprintf("crash: %s after %d steps", o.Crash, o.Steps)
	case StatusHang:
		return fmt.Sprintf("hang after %d steps", o.Steps)
	case StatusStopped:
		return fmt.Sprintf("stopped after %d steps", o.Steps)
	default:
		return "unknown outcome"
	}
}
