package vm

import (
	"fmt"

	"octopocs/internal/isa"
)

// DefaultMaxSteps is the instruction budget when Config.MaxSteps is zero.
// Exhausting it classifies the run as a hang.
const DefaultMaxSteps = 2_000_000

// Config parameterizes a run.
type Config struct {
	// Input is the contents of the single abstract input file.
	Input []byte
	// MaxSteps is the instruction budget; DefaultMaxSteps if zero.
	MaxSteps int64
	// Hooks receive instrumentation events; may be nil.
	Hooks *Hooks
	// Stop is a cooperative cancellation signal (typically a context's
	// Done channel). The machine polls it every stopCheckMask+1 steps and
	// ends the run with StatusStopped once it is closed. May be nil.
	Stop <-chan struct{}
	// Metrics receives run-level counters (flushed once per Run); may be
	// nil.
	Metrics *Metrics
}

// stopCheckMask throttles Stop-channel polling: the check fires when
// steps&stopCheckMask == 0, i.e. every 2048 instructions — frequent enough
// that cancellation latency stays in the microsecond range.
const stopCheckMask = 2047

// Hooks is the instrumentation surface, the analog of a PIN tool. Every
// field may be nil. Hook callbacks must not retain the slices they are
// passed beyond the call.
type Hooks struct {
	// OnInst fires before each instruction executes.
	OnInst func(loc isa.Loc, frameID uint64, in *isa.Inst)
	// OnBlock fires when control enters a basic block.
	OnBlock func(fn string, block int)
	// OnBlockRegs fires when control enters a basic block, exposing the
	// frame's register file at the block boundary; differential checkers
	// (the absint soundness fuzz target) compare it against static
	// abstractions. The slice aliases live machine state.
	OnBlockRegs func(fn string, block int, regs []uint64)
	// OnLoad fires after a successful memory load.
	OnLoad func(loc isa.Loc, frameID uint64, in *isa.Inst, addr uint64, val uint64)
	// OnStore fires after a successful memory store.
	OnStore func(loc isa.Loc, frameID uint64, in *isa.Inst, addr uint64, val uint64)
	// OnCall fires after a call's callee frame is set up. dst is the
	// caller register receiving the return value; callerID/calleeID
	// identify the frames for register-taint bookkeeping.
	OnCall func(site isa.Loc, callee string, args []uint64, callerID, calleeID uint64, dst isa.Reg)
	// OnRet fires when a function returns. dst is the caller register
	// receiving val.
	OnRet func(fn string, val uint64, callerID, calleeID uint64, dst isa.Reg)
	// OnRead fires after a successful SysRead: n bytes of file data from
	// fileOff were copied to bufAddr.
	OnRead func(fd uint64, fileOff int64, bufAddr uint64, n int)
	// OnMMap fires after a successful SysMMap of the whole input file.
	OnMMap func(fd uint64, base uint64, size int)
}

// file is one open descriptor over the input.
type file struct {
	pos int64
}

// frame is one activation record.
type frame struct {
	fn     *isa.Function
	regs   [isa.NumRegs]uint64
	block  int
	inst   int
	retDst isa.Reg // caller register receiving our return value
	id     uint64
}

// Machine interprets one program over one input. Create with New, drive with
// Run. A Machine is single-use.
type Machine struct {
	prog     *isa.Program
	mem      *Memory
	input    []byte
	files    []*file
	frames   []*frame
	hooks    Hooks
	maxSteps int64
	stop     <-chan struct{}
	metrics  *Metrics
	steps    int64
	output   []byte
	nextID   uint64
	// argPos is the cursor of the argument-string channel (SysArgRead).
	argPos int64
}

// New prepares a machine. The program must have been validated.
func New(prog *isa.Program, cfg Config) *Machine {
	m := &Machine{
		prog:     prog,
		mem:      NewMemory(),
		input:    cfg.Input,
		maxSteps: cfg.MaxSteps,
		stop:     cfg.Stop,
		metrics:  cfg.Metrics,
	}
	if m.maxSteps <= 0 {
		m.maxSteps = DefaultMaxSteps
	}
	if cfg.Hooks != nil {
		m.hooks = *cfg.Hooks
	}
	return m
}

// Memory exposes the address space, for post-mortem inspection.
func (m *Machine) Memory() *Memory { return m.mem }

// FilePos returns the position indicator of fd, or -1 if fd is not open.
// This is the paper's "file position indicator" consulted by phase P3.
func (m *Machine) FilePos(fd uint64) int64 {
	if f := m.fileFor(fd); f != nil {
		return f.pos
	}
	return -1
}

func (m *Machine) fileFor(fd uint64) *file {
	idx := int64(fd) - 3
	if idx < 0 || idx >= int64(len(m.files)) {
		return nil
	}
	return m.files[idx]
}

func (m *Machine) top() *frame { return m.frames[len(m.frames)-1] }

func (m *Machine) loc() isa.Loc {
	f := m.top()
	return isa.Loc{Func: f.fn.Name, Block: f.block, Inst: f.inst}
}

func (m *Machine) backtrace() []StackEntry {
	bt := make([]StackEntry, len(m.frames))
	for i, f := range m.frames {
		e := StackEntry{Func: f.fn.Name}
		if i > 0 {
			caller := m.frames[i-1]
			e.CallSite = isa.Loc{Func: caller.fn.Name, Block: caller.block, Inst: caller.inst}
		}
		bt[i] = e
	}
	return bt
}

func (m *Machine) crash(kind CrashKind, addr uint64, code int64) *Outcome {
	return &Outcome{
		Status: StatusCrash,
		Steps:  m.steps,
		Output: m.output,
		Crash: &Crash{
			Kind:      kind,
			Loc:       m.loc(),
			Addr:      addr,
			Code:      code,
			Backtrace: m.backtrace(),
		},
	}
}

func (m *Machine) crashFault(f *memFault) *Outcome {
	return m.crash(f.kind, f.addr, 0)
}

func (m *Machine) exit(code uint64) *Outcome {
	return &Outcome{Status: StatusExit, ExitCode: code, Steps: m.steps, Output: m.output}
}

// pushFrame activates fn with the given arguments and notifies OnCall.
func (m *Machine) pushFrame(fn *isa.Function, args []uint64, retDst isa.Reg) {
	var callerID uint64
	var site isa.Loc
	if len(m.frames) > 0 {
		callerID = m.top().id
		site = m.loc()
	}
	m.nextID++
	fr := &frame{fn: fn, retDst: retDst, id: m.nextID}
	copy(fr.regs[:], args)
	m.frames = append(m.frames, fr)
	if m.hooks.OnCall != nil {
		m.hooks.OnCall(site, fn.Name, args, callerID, fr.id, retDst)
	}
	if m.hooks.OnBlock != nil {
		m.hooks.OnBlock(fn.Name, 0)
	}
	if m.hooks.OnBlockRegs != nil {
		m.hooks.OnBlockRegs(fn.Name, 0, fr.regs[:])
	}
}

// Run executes the program to completion.
func (m *Machine) Run() *Outcome {
	out := m.run()
	m.metrics.observe(out)
	return out
}

func (m *Machine) run() *Outcome {
	entry := m.prog.Func(m.prog.Entry)
	m.pushFrame(entry, nil, 0)
	for {
		if m.stop != nil && m.steps&stopCheckMask == 0 {
			select {
			case <-m.stop:
				return &Outcome{Status: StatusStopped, Steps: m.steps, Output: m.output}
			default:
			}
		}
		if m.steps >= m.maxSteps {
			return &Outcome{
				Status: StatusHang,
				Steps:  m.steps,
				Output: m.output,
				Crash: &Crash{
					Kind:      CrashHang,
					Loc:       m.loc(),
					Backtrace: m.backtrace(),
				},
			}
		}
		m.steps++
		fr := m.top()
		in := &fr.fn.Blocks[fr.block].Insts[fr.inst]
		if m.hooks.OnInst != nil {
			m.hooks.OnInst(m.loc(), fr.id, in)
		}
		out := m.step(fr, in)
		if out != nil {
			return out
		}
	}
}

// step executes one instruction; a non-nil return ends the run.
func (m *Machine) step(fr *frame, in *isa.Inst) *Outcome {
	advance := true
	switch in.Op {
	case isa.OpConst:
		fr.regs[in.Dst] = uint64(in.Imm)
	case isa.OpMov:
		fr.regs[in.Dst] = fr.regs[in.A]
	case isa.OpBin:
		v, fault := binOp(in.Bin, fr.regs[in.A], fr.regs[in.B])
		if fault {
			return m.crash(CrashDiv, 0, 0)
		}
		fr.regs[in.Dst] = v
	case isa.OpBinImm:
		v, fault := binOp(in.Bin, fr.regs[in.A], uint64(in.Imm))
		if fault {
			return m.crash(CrashDiv, 0, 0)
		}
		fr.regs[in.Dst] = v
	case isa.OpCmp:
		fr.regs[in.Dst] = cmpOp(in.Cmp, fr.regs[in.A], fr.regs[in.B])
	case isa.OpCmpImm:
		fr.regs[in.Dst] = cmpOp(in.Cmp, fr.regs[in.A], uint64(in.Imm))
	case isa.OpLoad:
		addr := fr.regs[in.A] + uint64(in.Imm)
		v, fault := m.mem.Load(addr, in.Size)
		if fault != nil {
			return m.crashFault(fault)
		}
		fr.regs[in.Dst] = v
		if m.hooks.OnLoad != nil {
			m.hooks.OnLoad(m.loc(), fr.id, in, addr, v)
		}
	case isa.OpStore:
		addr := fr.regs[in.A] + uint64(in.Imm)
		v := fr.regs[in.B]
		if fault := m.mem.Store(addr, in.Size, v); fault != nil {
			return m.crashFault(fault)
		}
		if m.hooks.OnStore != nil {
			m.hooks.OnStore(m.loc(), fr.id, in, addr, v)
		}
	case isa.OpJmp:
		m.enterBlock(fr, in.ThenIdx)
		advance = false
	case isa.OpBr:
		if fr.regs[in.A] != 0 {
			m.enterBlock(fr, in.ThenIdx)
		} else {
			m.enterBlock(fr, in.ElseIdx)
		}
		advance = false
	case isa.OpCall:
		m.doCall(fr, m.prog.Func(in.Callee), in)
		advance = false
	case isa.OpCallInd:
		idx := fr.regs[in.A]
		callee := m.resolveIndirect(idx)
		if callee == nil {
			return m.crash(CrashBadCall, idx, 0)
		}
		m.doCall(fr, callee, in)
		advance = false
	case isa.OpRet:
		if out := m.doRet(fr, fr.regs[in.A]); out != nil {
			return out
		}
		advance = false
	case isa.OpTrap:
		return m.crash(CrashTrap, 0, in.Imm)
	case isa.OpSyscall:
		out, adv := m.doSyscall(fr, in)
		if out != nil {
			return out
		}
		advance = adv
	default:
		// Validate rejects unknown opcodes; reaching here is a bug.
		panic(fmt.Sprintf("vm: unknown opcode %d", in.Op))
	}
	if advance {
		fr.inst++
	}
	return nil
}

// resolveIndirect maps a function-table index to a callable function.
func (m *Machine) resolveIndirect(idx uint64) *isa.Function {
	if idx >= uint64(len(m.prog.FuncTable)) {
		return nil
	}
	name := m.prog.FuncTable[idx]
	if name == "" {
		return nil
	}
	return m.prog.Func(name)
}

func (m *Machine) enterBlock(fr *frame, block int) {
	fr.block = block
	fr.inst = 0
	if m.hooks.OnBlock != nil {
		m.hooks.OnBlock(fr.fn.Name, block)
	}
	if m.hooks.OnBlockRegs != nil {
		m.hooks.OnBlockRegs(fr.fn.Name, block, fr.regs[:])
	}
}

func (m *Machine) doCall(fr *frame, callee *isa.Function, in *isa.Inst) {
	args := make([]uint64, len(in.Args))
	for i, r := range in.Args {
		args[i] = fr.regs[r]
	}
	m.pushFrame(callee, args, in.Dst)
}

// doRet pops the current frame. Returning from the entry function ends the
// run with the return value as exit code.
func (m *Machine) doRet(fr *frame, val uint64) *Outcome {
	m.frames = m.frames[:len(m.frames)-1]
	if len(m.frames) == 0 {
		if m.hooks.OnRet != nil {
			m.hooks.OnRet(fr.fn.Name, val, 0, fr.id, 0)
		}
		return m.exit(val)
	}
	caller := m.top()
	caller.regs[fr.retDst] = val
	if m.hooks.OnRet != nil {
		m.hooks.OnRet(fr.fn.Name, val, caller.id, fr.id, fr.retDst)
	}
	caller.inst++ // resume after the call
	return nil
}

func binOp(op isa.BinOp, a, b uint64) (v uint64, divFault bool) {
	switch op {
	case isa.Add:
		return a + b, false
	case isa.Sub:
		return a - b, false
	case isa.Mul:
		return a * b, false
	case isa.Div:
		if b == 0 {
			return 0, true
		}
		return a / b, false
	case isa.Mod:
		if b == 0 {
			return 0, true
		}
		return a % b, false
	case isa.And:
		return a & b, false
	case isa.Or:
		return a | b, false
	case isa.Xor:
		return a ^ b, false
	case isa.Shl:
		if b >= 64 {
			return 0, false
		}
		return a << b, false
	case isa.Shr:
		if b >= 64 {
			return 0, false
		}
		return a >> b, false
	default:
		panic(fmt.Sprintf("vm: unknown binop %d", op))
	}
}

func cmpOp(op isa.CmpOp, a, b uint64) uint64 {
	var ok bool
	switch op {
	case isa.Eq:
		ok = a == b
	case isa.Ne:
		ok = a != b
	case isa.Lt:
		ok = a < b
	case isa.Le:
		ok = a <= b
	case isa.Gt:
		ok = a > b
	case isa.Ge:
		ok = a >= b
	case isa.SLt:
		ok = int64(a) < int64(b)
	case isa.SLe:
		ok = int64(a) <= int64(b)
	default:
		panic(fmt.Sprintf("vm: unknown cmpop %d", op))
	}
	if ok {
		return 1
	}
	return 0
}
