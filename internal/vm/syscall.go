package vm

import (
	"fmt"

	"octopocs/internal/isa"
)

// doSyscall executes a syscall instruction. It returns a terminal outcome
// (for SysExit or a faulting access) or nil, plus whether to advance past
// the instruction.
func (m *Machine) doSyscall(fr *frame, in *isa.Inst) (*Outcome, bool) {
	arg := func(i int) uint64 { return fr.regs[in.Args[i]] }

	switch in.Sys {
	case isa.SysOpen:
		m.files = append(m.files, &file{})
		fr.regs[in.Dst] = uint64(len(m.files) + 2) // fds start at 3

	case isa.SysRead:
		fd, buf, n := arg(0), arg(1), arg(2)
		f := m.fileFor(fd)
		if f == nil {
			fr.regs[in.Dst] = badFD
			break
		}
		remain := int64(len(m.input)) - f.pos
		if remain < 0 {
			remain = 0
		}
		count := int64(n)
		if count > remain {
			count = remain
		}
		if count > 0 {
			data := m.input[f.pos : f.pos+count]
			if fault := m.mem.WriteBytes(buf, data); fault != nil {
				return m.crashFault(fault), false
			}
			if m.hooks.OnRead != nil {
				m.hooks.OnRead(fd, f.pos, buf, int(count))
			}
			f.pos += count
		}
		fr.regs[in.Dst] = uint64(count)

	case isa.SysSeek:
		fd, off := arg(0), arg(1)
		f := m.fileFor(fd)
		if f == nil {
			fr.regs[in.Dst] = badFD
			break
		}
		pos := int64(off)
		if pos < 0 {
			pos = 0
		}
		if pos > int64(len(m.input)) {
			pos = int64(len(m.input))
		}
		f.pos = pos
		fr.regs[in.Dst] = uint64(pos)

	case isa.SysTell:
		f := m.fileFor(arg(0))
		if f == nil {
			fr.regs[in.Dst] = badFD
			break
		}
		fr.regs[in.Dst] = uint64(f.pos)

	case isa.SysSize:
		if m.fileFor(arg(0)) == nil {
			fr.regs[in.Dst] = badFD
			break
		}
		fr.regs[in.Dst] = uint64(len(m.input))

	case isa.SysMMap:
		fd := arg(0)
		if m.fileFor(fd) == nil {
			fr.regs[in.Dst] = 0
			break
		}
		base := m.mem.Map(m.input)
		fr.regs[in.Dst] = base
		if m.hooks.OnMMap != nil {
			m.hooks.OnMMap(fd, base, len(m.input))
		}

	case isa.SysAlloc:
		fr.regs[in.Dst] = m.mem.Alloc(arg(0))

	case isa.SysFree:
		if fault := m.mem.Free(arg(0)); fault != nil {
			return m.crashFault(fault), false
		}
		fr.regs[in.Dst] = 0

	case isa.SysWrite:
		buf, n := arg(0), arg(1)
		if n > 0 {
			data, fault := m.mem.ReadBytes(buf, n)
			if fault != nil {
				return m.crashFault(fault), false
			}
			m.output = append(m.output, data...)
		}
		fr.regs[in.Dst] = n

	case isa.SysExit:
		return m.exit(arg(0)), false

	case isa.SysArgRead:
		buf, n := arg(0), arg(1)
		remain := int64(len(m.input)) - m.argPos
		if remain < 0 {
			remain = 0
		}
		count := int64(n)
		if count > remain {
			count = remain
		}
		if count > 0 {
			data := m.input[m.argPos : m.argPos+count]
			if fault := m.mem.WriteBytes(buf, data); fault != nil {
				return m.crashFault(fault), false
			}
			if m.hooks.OnRead != nil {
				m.hooks.OnRead(ArgFD, m.argPos, buf, int(count))
			}
			m.argPos += count
		}
		fr.regs[in.Dst] = uint64(count)

	case isa.SysArgLen:
		fr.regs[in.Dst] = uint64(len(m.input))

	default:
		panic(fmt.Sprintf("vm: unknown syscall %d", in.Sys))
	}
	return nil, true
}

// badFD is the all-ones error value returned for operations on descriptors
// that were never opened, mirroring a -1 return in C.
const badFD = ^uint64(0)

// ArgFD is the pseudo-descriptor OnRead reports for argument-string reads
// (SysArgRead). The argument channel shares the input byte offsets with
// the file channel; a program is expected to consume one channel only.
const ArgFD = uint64(1) << 32
