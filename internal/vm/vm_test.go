package vm_test

import (
	"bytes"
	"testing"

	"octopocs/internal/asm"
	"octopocs/internal/isa"
	"octopocs/internal/vm"
)

// run builds a single-function program with the builder and executes it.
func run(t *testing.T, input []byte, body func(f *asm.Fn)) *vm.Outcome {
	t.Helper()
	return runCfg(t, vm.Config{Input: input}, body)
}

func runCfg(t *testing.T, cfg vm.Config, body func(f *asm.Fn)) *vm.Outcome {
	t.Helper()
	b := asm.NewBuilder("test")
	f := b.Function("main", 0)
	body(f)
	b.Entry("main")
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build() = %v", err)
	}
	return vm.New(prog, cfg).Run()
}

func wantExit(t *testing.T, out *vm.Outcome, code uint64) {
	t.Helper()
	if out.Status != vm.StatusExit || out.ExitCode != code {
		t.Fatalf("outcome = %v, want exit(%d)", out, code)
	}
}

func wantCrash(t *testing.T, out *vm.Outcome, kind vm.CrashKind) {
	t.Helper()
	if out.Status != vm.StatusCrash {
		t.Fatalf("outcome = %v, want crash %v", out, kind)
	}
	if out.Crash.Kind != kind {
		t.Fatalf("crash kind = %v, want %v", out.Crash.Kind, kind)
	}
}

func TestArithmetic(t *testing.T) {
	tests := []struct {
		name string
		op   isa.BinOp
		a, b int64
		want uint64
	}{
		{"add", isa.Add, 7, 5, 12},
		{"add wraps", isa.Add, -1, 2, 1},
		{"sub", isa.Sub, 7, 5, 2},
		{"sub wraps", isa.Sub, 0, 1, ^uint64(0)},
		{"mul", isa.Mul, 6, 7, 42},
		{"div", isa.Div, 42, 5, 8},
		{"mod", isa.Mod, 42, 5, 2},
		{"and", isa.And, 0xF0, 0x3C, 0x30},
		{"or", isa.Or, 0xF0, 0x0F, 0xFF},
		{"xor", isa.Xor, 0xFF, 0x0F, 0xF0},
		{"shl", isa.Shl, 1, 12, 4096},
		{"shl 64+ is zero", isa.Shl, 1, 64, 0},
		{"shr", isa.Shr, 4096, 12, 1},
		{"shr 64+ is zero", isa.Shr, 4096, 200, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out := run(t, nil, func(f *asm.Fn) {
				v := f.Bin(tt.op, f.Const(tt.a), f.Const(tt.b))
				f.Ret(v)
			})
			wantExit(t, out, tt.want)
		})
	}
}

func TestComparisons(t *testing.T) {
	tests := []struct {
		name string
		op   isa.CmpOp
		a, b int64
		want uint64
	}{
		{"eq true", isa.Eq, 3, 3, 1},
		{"eq false", isa.Eq, 3, 4, 0},
		{"ne", isa.Ne, 3, 4, 1},
		{"lt unsigned", isa.Lt, 3, 4, 1},
		{"lt unsigned negative is huge", isa.Lt, -1, 4, 0},
		{"le", isa.Le, 4, 4, 1},
		{"gt", isa.Gt, 5, 4, 1},
		{"ge", isa.Ge, 4, 5, 0},
		{"slt negative", isa.SLt, -1, 4, 1},
		{"sle", isa.SLe, -5, -5, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out := run(t, nil, func(f *asm.Fn) {
				v := f.Cmp(tt.op, f.Const(tt.a), f.Const(tt.b))
				f.Ret(v)
			})
			wantExit(t, out, tt.want)
		})
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	for _, size := range []uint8{1, 2, 4, 8} {
		out := run(t, nil, func(f *asm.Fn) {
			buf := f.Sys(isa.SysAlloc, f.Const(16))
			f.Store(size, buf, 4, f.Const(0x1122334455667788))
			f.Ret(f.Load(size, buf, 4))
		})
		var mask uint64 = ^uint64(0)
		if size < 8 {
			mask = (1 << (8 * uint(size))) - 1
		}
		wantExit(t, out, 0x1122334455667788&mask)
	}
}

func TestCrashKinds(t *testing.T) {
	t.Run("null deref", func(t *testing.T) {
		out := run(t, nil, func(f *asm.Fn) {
			f.Ret(f.Load(8, f.Const(0), 16))
		})
		wantCrash(t, out, vm.CrashNull)
	})
	t.Run("out of bounds", func(t *testing.T) {
		out := run(t, nil, func(f *asm.Fn) {
			buf := f.Sys(isa.SysAlloc, f.Const(8))
			f.Store(8, buf, 8, f.Const(1)) // one past the end
			f.RetI(0)
		})
		wantCrash(t, out, vm.CrashOOB)
	})
	t.Run("straddling the end", func(t *testing.T) {
		out := run(t, nil, func(f *asm.Fn) {
			buf := f.Sys(isa.SysAlloc, f.Const(8))
			f.Ret(f.Load(8, buf, 4)) // 4..12 straddles
		})
		wantCrash(t, out, vm.CrashOOB)
	})
	t.Run("use after free", func(t *testing.T) {
		out := run(t, nil, func(f *asm.Fn) {
			buf := f.Sys(isa.SysAlloc, f.Const(8))
			f.Sys(isa.SysFree, buf)
			f.Ret(f.Load(1, buf, 0))
		})
		wantCrash(t, out, vm.CrashUAF)
	})
	t.Run("double free", func(t *testing.T) {
		out := run(t, nil, func(f *asm.Fn) {
			buf := f.Sys(isa.SysAlloc, f.Const(8))
			f.Sys(isa.SysFree, buf)
			f.Sys(isa.SysFree, buf)
			f.RetI(0)
		})
		wantCrash(t, out, vm.CrashUAF)
	})
	t.Run("free of non-base", func(t *testing.T) {
		out := run(t, nil, func(f *asm.Fn) {
			buf := f.Sys(isa.SysAlloc, f.Const(8))
			f.Sys(isa.SysFree, f.AddI(buf, 1))
			f.RetI(0)
		})
		wantCrash(t, out, vm.CrashOOB)
	})
	t.Run("write to mapping", func(t *testing.T) {
		out := run(t, []byte{1, 2, 3, 4}, func(f *asm.Fn) {
			fd := f.Sys(isa.SysOpen)
			base := f.Sys(isa.SysMMap, fd)
			f.Store(1, base, 0, f.Const(9))
			f.RetI(0)
		})
		wantCrash(t, out, vm.CrashROWrite)
	})
	t.Run("div by zero", func(t *testing.T) {
		out := run(t, nil, func(f *asm.Fn) {
			f.Ret(f.Bin(isa.Div, f.Const(1), f.Const(0)))
		})
		wantCrash(t, out, vm.CrashDiv)
	})
	t.Run("mod by zero imm", func(t *testing.T) {
		out := run(t, nil, func(f *asm.Fn) {
			f.Ret(f.BinI(isa.Mod, f.Const(1), 0))
		})
		wantCrash(t, out, vm.CrashDiv)
	})
	t.Run("trap", func(t *testing.T) {
		out := run(t, nil, func(f *asm.Fn) {
			f.Trap(42)
		})
		wantCrash(t, out, vm.CrashTrap)
		if out.Crash.Code != 42 {
			t.Errorf("trap code = %d, want 42", out.Crash.Code)
		}
	})
	t.Run("guard gap between regions", func(t *testing.T) {
		out := run(t, nil, func(f *asm.Fn) {
			a := f.Sys(isa.SysAlloc, f.Const(8))
			f.Sys(isa.SysAlloc, f.Const(8))
			f.Store(1, a, 8, f.Const(1)) // lands in the gap, not region 2
			f.RetI(0)
		})
		wantCrash(t, out, vm.CrashOOB)
	})
}

func TestIndirectCall(t *testing.T) {
	build := func(idx int64, table ...string) (*isa.Program, error) {
		b := asm.NewBuilder("t")
		add3 := b.Function("add3", 1)
		add3.Ret(add3.AddI(add3.Param(0), 3))
		f := b.Function("main", 0)
		f.Ret(f.CallInd(f.Const(idx), f.Const(10)))
		b.Entry("main")
		b.FuncTable(table...)
		return b.Build()
	}

	t.Run("dispatches", func(t *testing.T) {
		prog, err := build(1, "add3", "add3")
		if err != nil {
			t.Fatal(err)
		}
		wantExit(t, vm.New(prog, vm.Config{}).Run(), 13)
	})
	t.Run("out of range index crashes", func(t *testing.T) {
		prog, err := build(5, "add3")
		if err != nil {
			t.Fatal(err)
		}
		wantCrash(t, vm.New(prog, vm.Config{}).Run(), vm.CrashBadCall)
	})
	t.Run("empty slot crashes", func(t *testing.T) {
		prog, err := build(0, "", "add3")
		if err != nil {
			t.Fatal(err)
		}
		wantCrash(t, vm.New(prog, vm.Config{}).Run(), vm.CrashBadCall)
	})
}

func TestFileSyscalls(t *testing.T) {
	input := []byte("hello world")

	t.Run("read and tell", func(t *testing.T) {
		out := run(t, input, func(f *asm.Fn) {
			fd := f.Sys(isa.SysOpen)
			buf := f.Sys(isa.SysAlloc, f.Const(8))
			n := f.Sys(isa.SysRead, fd, buf, f.Const(5))
			pos := f.Sys(isa.SysTell, fd)
			// return n*256 + pos
			f.Ret(f.Add(f.MulI(n, 256), pos))
		})
		wantExit(t, out, 5*256+5)
	})

	t.Run("read clamps at EOF", func(t *testing.T) {
		out := run(t, input, func(f *asm.Fn) {
			fd := f.Sys(isa.SysOpen)
			buf := f.Sys(isa.SysAlloc, f.Const(64))
			f.Sys(isa.SysSeek, fd, f.Const(8))
			f.Ret(f.Sys(isa.SysRead, fd, buf, f.Const(100)))
		})
		wantExit(t, out, 3) // "rld"
	})

	t.Run("seek clamps", func(t *testing.T) {
		out := run(t, input, func(f *asm.Fn) {
			fd := f.Sys(isa.SysOpen)
			f.Ret(f.Sys(isa.SysSeek, fd, f.Const(10_000)))
		})
		wantExit(t, out, uint64(len(input)))
	})

	t.Run("size", func(t *testing.T) {
		out := run(t, input, func(f *asm.Fn) {
			fd := f.Sys(isa.SysOpen)
			f.Ret(f.Sys(isa.SysSize, fd))
		})
		wantExit(t, out, uint64(len(input)))
	})

	t.Run("independent positions per open", func(t *testing.T) {
		out := run(t, input, func(f *asm.Fn) {
			fd1 := f.Sys(isa.SysOpen)
			fd2 := f.Sys(isa.SysOpen)
			buf := f.Sys(isa.SysAlloc, f.Const(8))
			f.Sys(isa.SysRead, fd1, buf, f.Const(5))
			f.Ret(f.Sys(isa.SysTell, fd2))
		})
		wantExit(t, out, 0)
	})

	t.Run("mmap exposes content", func(t *testing.T) {
		out := run(t, input, func(f *asm.Fn) {
			fd := f.Sys(isa.SysOpen)
			base := f.Sys(isa.SysMMap, fd)
			f.Ret(f.Load(1, base, 6)) // 'w'
		})
		wantExit(t, out, 'w')
	})

	t.Run("bad fd read", func(t *testing.T) {
		out := run(t, input, func(f *asm.Fn) {
			buf := f.Sys(isa.SysAlloc, f.Const(8))
			n := f.Sys(isa.SysRead, f.Const(99), buf, f.Const(5))
			f.If(f.EqI(n, -1), func() { f.RetI(1) })
			f.RetI(0)
		})
		wantExit(t, out, 1)
	})

	t.Run("write collects output", func(t *testing.T) {
		out := run(t, input, func(f *asm.Fn) {
			fd := f.Sys(isa.SysOpen)
			buf := f.Sys(isa.SysAlloc, f.Const(8))
			f.Sys(isa.SysRead, fd, buf, f.Const(5))
			f.Sys(isa.SysWrite, buf, f.Const(5))
			f.Exit(0)
		})
		if !bytes.Equal(out.Output, []byte("hello")) {
			t.Errorf("output = %q, want %q", out.Output, "hello")
		}
	})

	t.Run("read into bad buffer crashes", func(t *testing.T) {
		out := run(t, input, func(f *asm.Fn) {
			fd := f.Sys(isa.SysOpen)
			f.Sys(isa.SysRead, fd, f.Const(0), f.Const(5))
			f.RetI(0)
		})
		wantCrash(t, out, vm.CrashNull)
	})
}

func TestHang(t *testing.T) {
	out := runCfg(t, vm.Config{MaxSteps: 1000}, func(f *asm.Fn) {
		f.Forever(func() {})
		f.RetI(0)
	})
	if out.Status != vm.StatusHang {
		t.Fatalf("outcome = %v, want hang", out)
	}
	if out.Steps != 1000 {
		t.Errorf("steps = %d, want 1000", out.Steps)
	}
}

func TestControlFlowAndCalls(t *testing.T) {
	t.Run("if else taken", func(t *testing.T) {
		out := run(t, nil, func(f *asm.Fn) {
			f.IfElse(f.Const(1),
				func() { f.RetI(10) },
				func() { f.RetI(20) })
		})
		wantExit(t, out, 10)
	})
	t.Run("if else not taken", func(t *testing.T) {
		out := run(t, nil, func(f *asm.Fn) {
			f.IfElse(f.Const(0),
				func() { f.RetI(10) },
				func() { f.RetI(20) })
		})
		wantExit(t, out, 20)
	})
	t.Run("while sums", func(t *testing.T) {
		out := run(t, nil, func(f *asm.Fn) {
			i := f.VarI(0)
			sum := f.VarI(0)
			f.While(func() isa.Reg { return f.LtI(i, 10) }, func() {
				f.Assign(sum, f.Add(sum, i))
				f.Assign(i, f.AddI(i, 1))
			})
			f.Ret(sum)
		})
		wantExit(t, out, 45)
	})

	t.Run("nested calls and backtrace", func(t *testing.T) {
		b := asm.NewBuilder("t")
		inner := b.Function("inner", 1)
		inner.If(inner.GtI(inner.Param(0), 5), func() { inner.Trap(1) })
		inner.Ret(inner.Param(0))
		mid := b.Function("mid", 1)
		mid.Ret(mid.Call("inner", mid.AddI(mid.Param(0), 3)))
		f := b.Function("main", 0)
		f.Ret(f.Call("mid", f.Const(4)))
		b.Entry("main")
		prog, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		out := vm.New(prog, vm.Config{}).Run()
		wantCrash(t, out, vm.CrashTrap)
		want := []string{"main", "mid", "inner"}
		got := out.Crash.Funcs()
		if len(got) != len(want) {
			t.Fatalf("backtrace = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("backtrace = %v, want %v", got, want)
			}
		}
		if out.Crash.Backtrace[1].CallSite.Func != "main" {
			t.Errorf("mid's call site = %v, want in main", out.Crash.Backtrace[1].CallSite)
		}
	})

	t.Run("return value propagates", func(t *testing.T) {
		b := asm.NewBuilder("t")
		double := b.Function("double", 1)
		double.Ret(double.MulI(double.Param(0), 2))
		f := b.Function("main", 0)
		x := f.Call("double", f.Const(21))
		f.Ret(x)
		b.Entry("main")
		prog, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		wantExit(t, vm.New(prog, vm.Config{}).Run(), 42)
	})
}

func TestHooks(t *testing.T) {
	input := []byte{0xAA, 0xBB, 0xCC}
	var (
		insts, loads, stores, calls, rets, reads, mmaps, blocks int
		readOff                                                 int64
	)
	hooks := &vm.Hooks{
		OnInst:  func(isa.Loc, uint64, *isa.Inst) { insts++ },
		OnBlock: func(string, int) { blocks++ },
		OnLoad:  func(isa.Loc, uint64, *isa.Inst, uint64, uint64) { loads++ },
		OnStore: func(isa.Loc, uint64, *isa.Inst, uint64, uint64) { stores++ },
		OnCall: func(site isa.Loc, callee string, args []uint64, callerID, calleeID uint64, dst isa.Reg) {
			calls++
		},
		OnRet: func(fn string, val uint64, callerID, calleeID uint64, dst isa.Reg) { rets++ },
		OnRead: func(fd uint64, off int64, buf uint64, n int) {
			reads++
			readOff = off
		},
		OnMMap: func(fd uint64, base uint64, size int) { mmaps++ },
	}
	out := runCfg(t, vm.Config{Input: input, Hooks: hooks}, func(f *asm.Fn) {
		fd := f.Sys(isa.SysOpen)
		buf := f.Sys(isa.SysAlloc, f.Const(8))
		f.Sys(isa.SysSeek, fd, f.Const(1))
		f.Sys(isa.SysRead, fd, buf, f.Const(2))
		f.Sys(isa.SysMMap, fd)
		f.Store(1, buf, 4, f.Const(7))
		v := f.Load(1, buf, 0)
		f.Ret(v)
	})
	wantExit(t, out, 0xBB)
	if insts == 0 || int64(insts) != out.Steps {
		t.Errorf("OnInst fired %d times, steps = %d", insts, out.Steps)
	}
	if loads != 1 || stores != 1 {
		t.Errorf("loads=%d stores=%d, want 1 each", loads, stores)
	}
	if calls != 1 || rets != 1 { // entry call + final ret
		t.Errorf("calls=%d rets=%d, want 1 each", calls, rets)
	}
	if reads != 1 || readOff != 1 {
		t.Errorf("reads=%d off=%d, want 1 read at offset 1", reads, readOff)
	}
	if mmaps != 1 {
		t.Errorf("mmaps=%d, want 1", mmaps)
	}
	if blocks == 0 {
		t.Error("OnBlock never fired")
	}
}

func TestFilePosAccessor(t *testing.T) {
	b := asm.NewBuilder("t")
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	buf := f.Sys(isa.SysAlloc, f.Const(8))
	f.Sys(isa.SysRead, fd, buf, f.Const(3))
	f.Trap(0) // stop here so we can inspect
	b.Entry("main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(prog, vm.Config{Input: []byte("abcdef")})
	m.Run()
	if got := m.FilePos(3); got != 3 {
		t.Errorf("FilePos(3) = %d, want 3", got)
	}
	if got := m.FilePos(99); got != -1 {
		t.Errorf("FilePos(99) = %d, want -1", got)
	}
}

func TestAllocZeroAndHuge(t *testing.T) {
	t.Run("zero alloc is valid unique address", func(t *testing.T) {
		out := run(t, nil, func(f *asm.Fn) {
			a := f.Sys(isa.SysAlloc, f.Const(0))
			bb := f.Sys(isa.SysAlloc, f.Const(0))
			f.Ret(f.Cmp(isa.Ne, a, bb))
		})
		wantExit(t, out, 1)
	})
	t.Run("huge alloc returns null", func(t *testing.T) {
		out := run(t, nil, func(f *asm.Fn) {
			f.Ret(f.Sys(isa.SysAlloc, f.Const(1<<40)))
		})
		wantExit(t, out, 0)
	})
	t.Run("overflowed size wraps to huge and fails", func(t *testing.T) {
		// The classic CWE-190 pattern: width*height wraps, the C
		// allocator refuses or under-allocates.
		out := run(t, nil, func(f *asm.Fn) {
			n := f.Mul(f.Const(1<<33), f.Const(1<<33)) // wraps to 0 mod 2^64... use other values
			_ = n
			m := f.Mul(f.Const(1<<32), f.Const(1<<31)) // = 1<<63: too big
			f.Ret(f.Sys(isa.SysAlloc, m))
		})
		wantExit(t, out, 0)
	})
}

func TestOutcomeStrings(t *testing.T) {
	out := run(t, nil, func(f *asm.Fn) { f.Exit(3) })
	if got := out.String(); got == "" {
		t.Error("Outcome.String() empty")
	}
	out = run(t, nil, func(f *asm.Fn) { f.Trap(1) })
	if got := out.String(); got == "" {
		t.Error("crash Outcome.String() empty")
	}
	if !out.CrashedIn(map[string]bool{"main": true}) {
		t.Error("CrashedIn(main) = false, want true")
	}
	if out.CrashedIn(map[string]bool{"other": true}) {
		t.Error("CrashedIn(other) = true, want false")
	}
}
