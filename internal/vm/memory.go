package vm

import (
	"encoding/binary"
	"sort"
)

// Memory layout constants.
const (
	// nullGuard is the size of the unmapped page at address zero; any
	// access below it is a null dereference.
	nullGuard = 0x1000
	// heapBase is where the first allocation lands.
	heapBase = 0x10000
	// regionGap is the unmapped guard gap between consecutive regions, so
	// that a linear overflow off one buffer cannot silently land in the
	// next.
	regionGap = 64
	// maxAlloc caps a single allocation; larger requests fail (return 0),
	// which is how C allocators refuse absurd sizes produced by integer
	// overflows.
	maxAlloc = 1 << 26
)

// Region is a contiguous allocation.
type Region struct {
	Base     uint64
	Data     []byte
	Freed    bool
	ReadOnly bool // file mapping
}

// End returns one past the last valid address.
func (r *Region) End() uint64 { return r.Base + uint64(len(r.Data)) }

// Memory is a region-based address space with guard gaps. The zero value is
// not usable; call NewMemory.
type Memory struct {
	regions []*Region
	next    uint64
}

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{next: heapBase}
}

// memFault describes a failed access. It is converted into a Crash by the
// interpreter, which knows the faulting location.
type memFault struct {
	kind CrashKind
	addr uint64
}

// Alloc reserves n bytes and returns the base address, or 0 if the request
// exceeds maxAlloc. Zero-length allocations get a one-byte region so the
// returned base is still a valid unique address.
func (m *Memory) Alloc(n uint64) uint64 {
	if n > maxAlloc {
		return 0
	}
	if n == 0 {
		n = 1
	}
	r := &Region{Base: m.next, Data: make([]byte, n)}
	m.regions = append(m.regions, r)
	m.next += (n + regionGap + 15) &^ 15
	return r.Base
}

// Map reserves a read-only region initialized with data and returns its base.
func (m *Memory) Map(data []byte) uint64 {
	base := m.Alloc(uint64(len(data)))
	r := m.regions[len(m.regions)-1]
	copy(r.Data, data)
	r.ReadOnly = true
	return base
}

// Free releases the region starting exactly at base. Freeing an unknown or
// already-freed base returns a fault, mirroring glibc aborting on invalid
// free.
func (m *Memory) Free(base uint64) *memFault {
	r := m.find(base)
	if r == nil || r.Base != base {
		return &memFault{kind: CrashOOB, addr: base}
	}
	if r.Freed {
		return &memFault{kind: CrashUAF, addr: base}
	}
	r.Freed = true
	return nil
}

// find returns the region containing addr, or nil. Regions are allocated at
// monotonically increasing bases, so the slice is sorted.
func (m *Memory) find(addr uint64) *Region {
	i := sort.Search(len(m.regions), func(i int) bool {
		return m.regions[i].Base > addr
	})
	if i == 0 {
		return nil
	}
	r := m.regions[i-1]
	if addr >= r.End() {
		return nil
	}
	return r
}

// check validates an access of size bytes at addr and returns the backing
// slice on success.
func (m *Memory) check(addr uint64, size uint64, write bool) ([]byte, *memFault) {
	if addr < nullGuard {
		return nil, &memFault{kind: CrashNull, addr: addr}
	}
	r := m.find(addr)
	if r == nil {
		return nil, &memFault{kind: CrashOOB, addr: addr}
	}
	if r.Freed {
		return nil, &memFault{kind: CrashUAF, addr: addr}
	}
	if addr+size > r.End() || addr+size < addr {
		return nil, &memFault{kind: CrashOOB, addr: addr}
	}
	if write && r.ReadOnly {
		return nil, &memFault{kind: CrashROWrite, addr: addr}
	}
	off := addr - r.Base
	return r.Data[off : off+size], nil
}

// Load reads a little-endian value of size 1, 2, 4 or 8 bytes.
func (m *Memory) Load(addr uint64, size uint8) (uint64, *memFault) {
	buf, fault := m.check(addr, uint64(size), false)
	if fault != nil {
		return 0, fault
	}
	switch size {
	case 1:
		return uint64(buf[0]), nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(buf)), nil
	case 4:
		return uint64(binary.LittleEndian.Uint32(buf)), nil
	default:
		return binary.LittleEndian.Uint64(buf), nil
	}
}

// Store writes a little-endian value of size 1, 2, 4 or 8 bytes.
func (m *Memory) Store(addr uint64, size uint8, val uint64) *memFault {
	buf, fault := m.check(addr, uint64(size), true)
	if fault != nil {
		return fault
	}
	switch size {
	case 1:
		buf[0] = byte(val)
	case 2:
		binary.LittleEndian.PutUint16(buf, uint16(val))
	case 4:
		binary.LittleEndian.PutUint32(buf, uint32(val))
	default:
		binary.LittleEndian.PutUint64(buf, val)
	}
	return nil
}

// WriteBytes copies data into memory at addr, validating the whole range.
func (m *Memory) WriteBytes(addr uint64, data []byte) *memFault {
	buf, fault := m.check(addr, uint64(len(data)), true)
	if fault != nil {
		return fault
	}
	copy(buf, data)
	return nil
}

// ReadBytes copies n bytes out of memory starting at addr.
func (m *Memory) ReadBytes(addr uint64, n uint64) ([]byte, *memFault) {
	buf, fault := m.check(addr, n, false)
	if fault != nil {
		return nil, fault
	}
	out := make([]byte, n)
	copy(out, buf)
	return out, nil
}

// Regions returns the current region list (live view, for inspection).
func (m *Memory) Regions() []*Region { return m.regions }
