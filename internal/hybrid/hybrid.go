// Package hybrid implements the directed-fuzzing fallback that runs when
// symbolic execution gives up: a θ-exhaustion (loop-dead) or solver-budget
// outcome from P2 leaves the pair unresolved, and — following TransferFuzz's
// observation that historical traces make good fuzzing guidance exactly
// where symex is too weak — the fallback reuses everything the pipeline
// already computed. The campaign is seeded with the partially-solved poc′
// (the model of the failed exploration's path constraints) alongside the
// original PoC, masks mutation with the P1 bunch offsets so the propagated
// crash primitive is preserved in the structured arm, and anneals seed
// energy with P2's `cfg.DistancesTo` maps toward the shared vulnerable code
// ℓ. A campaign crash is never trusted on its own: the candidate input is
// replayed on the concrete VM (the P4 verifier) and only a confirmed crash
// inside ℓ upgrades the verdict, so fuzzing can rescue a failure but never
// flip a sound verdict.
//
// The campaign runs two deterministic arms: a structure-preserving arm
// with the bunch mask frozen, then — only if the first arm finds nothing —
// a free arm without the mask, for targets whose propagated format moved
// the crash primitive to different offsets.
//
// Concurrency: Run is safe to call concurrently with distinct Campaign
// values; parallelism inside one campaign is delegated to internal/fuzz's
// shard scheduler, whose results are byte-identical for any worker count.
package hybrid

import (
	"octopocs/internal/cfg"
	"octopocs/internal/fuzz"
	"octopocs/internal/isa"
	"octopocs/internal/vm"
)

// Default campaign knobs. The exec budget is split evenly between the
// masked and free arms, and each arm across its shards.
const (
	DefaultMaxExecs = 120_000
	DefaultShards   = 2
)

// Campaign describes one fallback campaign against the propagated target T.
type Campaign struct {
	// Prog is T, the binary whose crash would verify the propagation.
	Prog *isa.Program
	// Lib is ℓ; only a crash whose innermost frame is in Lib counts.
	Lib map[string]bool
	// TargetFn is the entry point into ℓ that P1 bound (the annealing
	// target). Empty disables distance annealing even when Dist is set.
	TargetFn string
	// Dist is P2's distance map toward TargetFn; nil degrades the
	// schedule to plain AFLFast coverage guidance.
	Dist *cfg.Distances
	// Seeds is the initial corpus: the partially-solved poc′ first (when
	// the failed exploration produced constraints), then the original PoC.
	Seeds [][]byte
	// Frozen lists the P1 bunch spans (crash-primitive bytes at their PoC
	// offsets); the masked arm never mutates them.
	Frozen []fuzz.Span
	// MaxExecs bounds the whole campaign (both arms). 0 means
	// DefaultMaxExecs.
	MaxExecs int64
	// MaxSteps bounds each concrete execution.
	MaxSteps int64
	// MaxInputLen bounds generated inputs (the discovered input size).
	MaxInputLen int
	// Seed makes the campaign deterministic.
	Seed int64
	// Shards and Workers are forwarded to the fuzz scheduler per arm.
	Shards  int
	Workers int
}

// Outcome is one campaign's result — the artifact cached under the hy:
// class and attached to the report.
type Outcome struct {
	// Rescued reports a replay-confirmed crash inside ℓ.
	Rescued bool `json:"rescued"`
	// Confirmed reports the concrete-VM replay verdict for PoCPrime. It
	// can only be false on a corrupted (e.g. cache-damaged) outcome, in
	// which case Rescued is forced false too.
	Confirmed bool `json:"confirmed"`
	// PoCPrime is the crashing input when Rescued.
	PoCPrime []byte `json:"poc_prime,omitempty"`
	// CrashLoc is where the confirmed crash fired (func:block:inst).
	CrashLoc string `json:"crash_loc,omitempty"`
	// Execs counts concrete executions spent across both arms.
	Execs int64 `json:"execs"`
	// MaskedArm reports whether the structure-preserving arm won.
	MaskedArm bool `json:"masked_arm"`
	// WinnerShard is the winning shard within the winning arm, or -1.
	WinnerShard int `json:"winner_shard"`
}

// Confirm replays input on the concrete VM and reports whether it crashes
// inside lib — the same predicate the campaign harness uses and the gate
// every reported poc′ must pass again before a verdict upgrade.
func Confirm(prog *isa.Program, lib map[string]bool, input []byte, maxSteps int64) (bool, isa.Loc) {
	out := vm.New(prog, vm.Config{Input: input, MaxSteps: maxSteps}).Run()
	if out.Crashed() && out.CrashedIn(lib) {
		return true, out.Crash.Loc
	}
	return false, isa.Loc{}
}

// Revalidate re-runs the replay gate on a previously computed outcome (a
// cache hit, typically). It returns false when the outcome claims a rescue
// whose poc′ no longer crashes T inside ℓ — a corrupted artifact that must
// be discarded rather than reported.
func Revalidate(c *Campaign, o *Outcome) bool {
	if o == nil {
		return false
	}
	if !o.Rescued {
		return true
	}
	ok, _ := Confirm(c.Prog, c.Lib, o.PoCPrime, c.MaxSteps)
	return ok
}

// Run executes the fallback campaign: the masked arm first, the free arm
// only if the masked arm found nothing, then the replay confirmation.
func (c *Campaign) Run() *Outcome {
	maxExecs := c.MaxExecs
	if maxExecs <= 0 {
		maxExecs = DefaultMaxExecs
	}
	shards := c.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	target := &fuzz.Target{Prog: c.Prog, Lib: c.Lib, MaxSteps: c.MaxSteps}
	arm := func(frozen []fuzz.Span, budget int64, seedSalt int64) *fuzz.Result {
		return fuzz.RunDirected(target, c.TargetFn, c.Dist, fuzz.Config{
			Seeds:       c.Seeds,
			MaxExecs:    budget,
			Seed:        c.Seed + seedSalt,
			MaxInputLen: c.MaxInputLen,
			Frozen:      frozen,
			Shards:      shards,
			Workers:     c.Workers,
		})
	}

	out := &Outcome{WinnerShard: -1}
	res := arm(c.Frozen, maxExecs/2, 0)
	out.Execs = res.Execs
	masked := len(c.Frozen) > 0
	if !res.Found {
		res = arm(nil, maxExecs-maxExecs/2, 1)
		out.Execs += res.Execs
		masked = false
	}
	if !res.Found {
		return out
	}

	ok, loc := Confirm(c.Prog, c.Lib, res.Crash, c.MaxSteps)
	out.Confirmed = ok
	if !ok {
		return out
	}
	out.Rescued = true
	out.PoCPrime = append([]byte(nil), res.Crash...)
	out.CrashLoc = loc.String()
	out.MaskedArm = masked
	out.WinnerShard = res.WinnerShard
	return out
}
