package hybrid_test

import (
	"bytes"
	"testing"

	"octopocs/internal/asm"
	"octopocs/internal/fuzz"
	"octopocs/internal/hybrid"
	"octopocs/internal/isa"
	"octopocs/internal/vm"
)

// gateProg builds the replay-test target: main requires byte 0 to carry its
// high bit, then sink reads a length byte and that many bytes into an
// 8-byte buffer — crash iff input[0]&0x80 != 0 and input[1] > 8 (with
// enough payload bytes to overflow).
func gateProg() (*isa.Program, map[string]bool) {
	b := asm.NewBuilder("gate")
	g := b.Function("sink", 1)
	fd := g.Param(0)
	buf := g.Sys(isa.SysAlloc, g.Const(8))
	lb := g.Sys(isa.SysAlloc, g.Const(1))
	g.Sys(isa.SysRead, fd, lb, g.Const(1))
	g.Sys(isa.SysRead, fd, buf, g.Load(1, lb, 0))
	g.RetI(0)

	f := b.Function("main", 0)
	fd2 := f.Sys(isa.SysOpen)
	hb := f.Sys(isa.SysAlloc, f.Const(1))
	f.Sys(isa.SysRead, fd2, hb, f.Const(1))
	f.If(f.EqI(f.AndI(f.Load(1, hb, 0), 0x80), 0), func() { f.Exit(1) })
	f.Call("sink", fd2)
	f.Exit(0)
	b.Entry("main")
	return b.MustBuild(), map[string]bool{"sink": true}
}

func gateCampaign() *hybrid.Campaign {
	prog, lib := gateProg()
	return &hybrid.Campaign{
		Prog:        prog,
		Lib:         lib,
		TargetFn:    "sink",
		Seeds:       [][]byte{make([]byte, 24)},
		MaxExecs:    200_000,
		MaxSteps:    10_000,
		MaxInputLen: 24,
		Seed:        7,
		Shards:      2,
		Workers:     2,
	}
}

// TestCampaignRescueConfirmed runs a full campaign and checks the outcome
// invariants: a rescue is always replay-confirmed, its poc' crashes the
// target inside ℓ on an independent VM run, and the crash location names
// an ℓ function.
func TestCampaignRescueConfirmed(t *testing.T) {
	c := gateCampaign()
	out := c.Run()
	if !out.Rescued || !out.Confirmed {
		t.Fatalf("campaign did not rescue: %+v", out)
	}
	vmOut := vm.New(c.Prog, vm.Config{Input: out.PoCPrime, MaxSteps: c.MaxSteps}).Run()
	if !vmOut.Crashed() || !vmOut.CrashedIn(c.Lib) {
		t.Fatalf("poc' replay = %v, want crash inside ℓ", vmOut)
	}
	if out.CrashLoc != vmOut.Crash.Loc.String() {
		t.Errorf("crash loc %q, replay says %q", out.CrashLoc, vmOut.Crash.Loc)
	}
	if out.PoCPrime[0]&0x80 == 0 {
		t.Errorf("poc' does not pass the gate: %x", out.PoCPrime)
	}
}

// TestCampaignDeterministic pins that the same campaign seed yields the
// same outcome for any worker count.
func TestCampaignDeterministic(t *testing.T) {
	var want *hybrid.Outcome
	for _, workers := range []int{0, 1, 4} {
		c := gateCampaign()
		c.Workers = workers
		out := c.Run()
		if want == nil {
			want = out
			continue
		}
		if out.Rescued != want.Rescued || out.Execs != want.Execs ||
			out.WinnerShard != want.WinnerShard || !bytes.Equal(out.PoCPrime, want.PoCPrime) {
			t.Fatalf("workers=%d diverges: %+v vs %+v", workers, out, want)
		}
	}
}

// TestMaskedArmWins checks arm selection: when the frozen mask keeps the
// crash reachable, the masked arm wins and the frozen bytes survive in the
// reported poc'.
func TestMaskedArmWins(t *testing.T) {
	c := gateCampaign()
	// Freeze bytes 8..16 — irrelevant to the crash condition, so the
	// masked arm can still find it.
	seed := make([]byte, 24)
	for i := 8; i < 16; i++ {
		seed[i] = byte('A' + i)
	}
	c.Seeds = [][]byte{seed}
	c.Frozen = []fuzz.Span{{Start: 8, Len: 8}}
	out := c.Run()
	if !out.Rescued {
		t.Fatalf("masked campaign did not rescue: %+v", out)
	}
	if !out.MaskedArm {
		t.Errorf("free arm won despite a reachable masked crash: %+v", out)
	}
	for i := 8; i < 16; i++ {
		if out.PoCPrime[i] != seed[i] {
			t.Errorf("frozen byte %d mutated: %x", i, out.PoCPrime)
		}
	}
}

// TestFreeArmFallback checks the second arm: when the frozen mask pins the
// very byte the crash needs (the gate flag), the masked arm must fail and
// the free arm rescue.
func TestFreeArmFallback(t *testing.T) {
	c := gateCampaign()
	c.Frozen = []fuzz.Span{{Start: 0, Len: 2}} // freezes the gate and length bytes
	out := c.Run()
	if !out.Rescued {
		t.Fatalf("campaign did not rescue: %+v", out)
	}
	if out.MaskedArm {
		t.Errorf("masked arm claims a crash its mask forbids: %+v", out)
	}
}

// TestRevalidateRejectsCorrupted is the cache-damage gate: an outcome whose
// poc' does not reproduce the crash must be rejected, while intact rescues
// and non-rescues pass.
func TestRevalidateRejectsCorrupted(t *testing.T) {
	c := gateCampaign()
	out := c.Run()
	if !out.Rescued {
		t.Fatalf("campaign did not rescue: %+v", out)
	}
	if !hybrid.Revalidate(c, out) {
		t.Error("intact rescue rejected")
	}
	corrupted := *out
	corrupted.PoCPrime = make([]byte, len(out.PoCPrime)) // gate bit cleared
	if hybrid.Revalidate(c, &corrupted) {
		t.Error("corrupted rescue accepted")
	}
	if !hybrid.Revalidate(c, &hybrid.Outcome{}) {
		t.Error("non-rescue outcome rejected (nothing to confirm)")
	}
	if hybrid.Revalidate(c, nil) {
		t.Error("nil outcome accepted")
	}
}

// FuzzHybridReplay fuzzes the replay gate with arbitrary claimed poc'
// bytes: Revalidate must accept a claimed rescue exactly when the bytes
// really crash T inside ℓ on the concrete VM — so a corrupted campaign
// result (or damaged cache artifact) can never smuggle a non-crashing
// input into a triggered-by-fuzzing report.
func FuzzHybridReplay(f *testing.F) {
	prog, lib := gateProg()
	c := &hybrid.Campaign{Prog: prog, Lib: lib, MaxSteps: 10_000}
	f.Add([]byte{})
	f.Add(make([]byte, 24))
	f.Add([]byte{0x80, 20, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22})
	f.Add([]byte{0x7f, 20, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		claimed := &hybrid.Outcome{Rescued: true, PoCPrime: data}
		accepted := hybrid.Revalidate(c, claimed)
		out := vm.New(prog, vm.Config{Input: data, MaxSteps: 10_000}).Run()
		crashes := out.Crashed() && out.CrashedIn(lib)
		if accepted != crashes {
			t.Fatalf("replay gate disagrees with the VM: accepted=%v, crashes=%v (input %x)",
				accepted, crashes, data)
		}
		// Confirm must agree with Revalidate on the same bytes.
		ok, loc := hybrid.Confirm(prog, lib, data, 10_000)
		if ok != crashes {
			t.Fatalf("Confirm disagrees with the VM: ok=%v, crashes=%v (input %x)", ok, crashes, data)
		}
		if ok && !lib[loc.Func] {
			t.Fatalf("Confirm reported a crash outside ℓ: %v", loc)
		}
	})
}
