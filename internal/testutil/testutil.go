// Package testutil holds the shared test helpers of the repository's
// concurrency-heavy suites: condition polling with a deadline (WaitFor)
// and goroutine-leak detection (CheckGoroutineLeaks). The service worker
// pool around phases P1–P4, the P2 frontier explorers, and the chaos
// harness all assert "eventually X, and no goroutine outlives the test"
// — these helpers are that assertion, written once.
//
// Concurrency: the helpers only poll runtime state from the test
// goroutine; they create no goroutines and hold no locks, so tests using
// them may run in parallel.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// pollInterval is the sleep between condition checks.
const pollInterval = 2 * time.Millisecond

// WaitFor polls cond until it returns true or the timeout elapses, failing
// the test fatally in the latter case with the formatted message.
func WaitFor(t testing.TB, cond func() bool, timeout time.Duration, format string, args ...any) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("WaitFor: condition not met within %v: "+format, append([]any{timeout}, args...)...)
		}
		time.Sleep(pollInterval)
	}
}

// leakSettleTimeout bounds how long CheckGoroutineLeaks waits for stray
// goroutines to exit before declaring a leak. Worker pools and HTTP test
// servers wind down asynchronously after Shutdown/Close returns, so the
// check polls instead of snapshotting once.
const leakSettleTimeout = 10 * time.Second

// CheckGoroutineLeaks snapshots the goroutine count and registers a cleanup
// that fails the test if, after everything the test deferred has run, more
// goroutines remain than at the snapshot (with time for asynchronous
// teardown to settle). Register it first thing in the test — cleanups run
// LIFO after all defers, so the check observes the fully torn-down state.
func CheckGoroutineLeaks(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(leakSettleTimeout)
		var now int
		for {
			now = runtime.NumGoroutine()
			if now <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(pollInterval)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d goroutines before the test, %d after settling %v\n%s",
			before, now, leakSettleTimeout, buf[:n])
	})
}
