package telemetry

import (
	"sync"
	"time"
)

// Trace records the span tree of one verification job: phases P1→P2→P3→P4
// and their key sub-steps (distance-map build, ep entry binds, solver
// calls). A nil *Trace is a no-op recorder — Start returns a nil *Span
// whose methods are also no-ops — so untraced runs pay nothing.
//
// A trace is written by the single worker goroutine running the job, but
// snapshotting may race with recording (a live trace listed over HTTP), so
// every access takes the trace mutex.
//
// The span store is a fixed-capacity ring: once full, each new span
// overwrites the oldest one (recent activity explains a stuck job better
// than its distant past) and the dropped counter records the loss. A child
// whose parent was evicted renders as a root in the snapshot.
type Trace struct {
	mu      sync.Mutex
	id      string
	name    string
	start   time.Time
	end     time.Time
	spans   []*Span // circular once len == spanCap; head is the oldest
	head    int
	spanCap int
	dropped uint64
	nextID  int
}

// Span is one timed operation within a trace.
type Span struct {
	tr     *Trace
	id     int
	parent int // span id, or -1 for a root
	name   string
	start  time.Time
	end    time.Time
	attrs  map[string]any
}

// DefaultSpanCapacity bounds a trace's retained spans. A full corpus
// verification opens a few dozen spans; the headroom covers pathological
// jobs (deep symbolic exploration, heavy retry loops) without letting one
// runaway job grow its trace without bound.
const DefaultSpanCapacity = 4096

// NewTrace starts a trace with the default span capacity. id is the lookup
// key (the job id); name labels the overall operation.
func NewTrace(id, name string) *Trace {
	return NewTraceWithCapacity(id, name, 0)
}

// NewTraceWithCapacity starts a trace retaining at most spans spans
// (DefaultSpanCapacity when <= 0) before drop-oldest eviction begins.
func NewTraceWithCapacity(id, name string, spans int) *Trace {
	if spans <= 0 {
		spans = DefaultSpanCapacity
	}
	return &Trace{id: id, name: name, start: time.Now(), spanCap: spans}
}

// ID returns the trace's lookup key.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start opens a span under parent (nil parent = root span). Safe on a nil
// trace, returning a nil span.
func (t *Trace) Start(name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := &Span{tr: t, id: t.nextID, parent: -1, name: name, start: time.Now()}
	if parent != nil {
		sp.parent = parent.id
	}
	t.nextID++
	if t.spanCap > 0 && len(t.spans) >= t.spanCap {
		// Ring is full: overwrite the oldest span and advance the head.
		t.spans[t.head] = sp
		t.head = (t.head + 1) % len(t.spans)
		t.dropped++
	} else {
		t.spans = append(t.spans, sp)
	}
	return sp
}

// Finish marks the trace complete. Idempotent.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.end.IsZero() {
		t.end = time.Now()
	}
}

// SetAttr attaches an attribute to the span. Safe on a nil span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = value
}

// End closes the span. Idempotent; safe on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
}

// SpanSnapshot is the JSON form of one span, children nested.
type SpanSnapshot struct {
	ID         int             `json:"id"`
	Name       string          `json:"name"`
	StartUS    int64           `json:"start_us"` // offset from trace start
	DurationUS int64           `json:"duration_us"`
	Attrs      map[string]any  `json:"attrs,omitempty"`
	Children   []*SpanSnapshot `json:"children,omitempty"`
}

// TraceSnapshot is the JSON form of a finished (or in-flight) trace: the
// span tree served by GET /v1/jobs/{id}/trace.
type TraceSnapshot struct {
	ID         string    `json:"id"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationUS int64     `json:"duration_us"`
	Finished   bool      `json:"finished"`
	// DroppedSpans counts spans the fixed-capacity ring evicted
	// (oldest-first) to make room for newer ones.
	DroppedSpans uint64          `json:"dropped_spans,omitempty"`
	Spans        []*SpanSnapshot `json:"spans"`
}

// Snapshot renders the span tree. An unfinished span or trace reports
// duration up to now. Returns a zero snapshot for a nil trace.
func (t *Trace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	snap := TraceSnapshot{
		ID:           t.id,
		Name:         t.name,
		Start:        t.start,
		Finished:     !t.end.IsZero(),
		DroppedSpans: t.dropped,
	}
	end := t.end
	if end.IsZero() {
		end = now
	}
	snap.DurationUS = end.Sub(t.start).Microseconds()

	// Walk the ring oldest-first so insertion order (and with it the
	// children-after-parents property) survives wraparound.
	ordered := make([]*Span, 0, len(t.spans))
	for i := 0; i < len(t.spans); i++ {
		ordered = append(ordered, t.spans[(t.head+i)%len(t.spans)])
	}
	nodes := make(map[int]*SpanSnapshot, len(ordered))
	for _, sp := range ordered {
		spEnd := sp.end
		if spEnd.IsZero() {
			spEnd = now
		}
		node := &SpanSnapshot{
			ID:         sp.id,
			Name:       sp.name,
			StartUS:    sp.start.Sub(t.start).Microseconds(),
			DurationUS: spEnd.Sub(sp.start).Microseconds(),
		}
		if len(sp.attrs) > 0 {
			node.Attrs = make(map[string]any, len(sp.attrs))
			for k, v := range sp.attrs {
				node.Attrs[k] = v
			}
		}
		nodes[sp.id] = node
	}
	// Children attach after parents; a child whose parent was evicted (or
	// never recorded) becomes a root.
	for _, sp := range ordered {
		node := nodes[sp.id]
		if parent, ok := nodes[sp.parent]; sp.parent >= 0 && ok {
			parent.Children = append(parent.Children, node)
		} else {
			snap.Spans = append(snap.Spans, node)
		}
	}
	return snap
}

// TraceRing keeps the most recent finished traces, keyed by trace ID, in a
// bounded buffer: adding beyond capacity evicts the oldest insertion. All
// methods are safe for concurrent use; a nil ring is a no-op.
type TraceRing struct {
	mu   sync.Mutex
	cap  int
	byID map[string]*Trace
	ids  []string // insertion order; front = oldest
}

// DefaultTraceCapacity bounds the ring when no capacity is configured.
const DefaultTraceCapacity = 256

// NewTraceRing returns a ring holding at most capacity traces
// (DefaultTraceCapacity when <= 0).
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &TraceRing{cap: capacity, byID: make(map[string]*Trace)}
}

// Put inserts a trace, evicting the oldest when full. A trace with an
// already-present ID replaces the stored one without consuming capacity.
func (r *TraceRing) Put(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	id := t.ID()
	if _, ok := r.byID[id]; ok {
		r.byID[id] = t
		return
	}
	r.byID[id] = t
	r.ids = append(r.ids, id)
	if len(r.ids) > r.cap {
		delete(r.byID, r.ids[0])
		r.ids = r.ids[1:]
	}
}

// Get returns the trace stored under id.
func (r *TraceRing) Get(id string) (*Trace, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.byID[id]
	return t, ok
}

// Len reports the number of retained traces.
func (r *TraceRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ids)
}

// IDs returns the retained trace IDs, oldest first.
func (r *TraceRing) IDs() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.ids...)
	return out
}
