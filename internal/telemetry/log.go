package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
)

type ctxKey int

const (
	loggerKey ctxKey = iota
	traceKey
)

// discardHandler is a slog.Handler that reports every level disabled, so
// the logging call sites short-circuit before formatting anything.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// discardLogger is handed out when no logger is configured.
var discardLogger = slog.New(discardHandler{})

// DiscardLogger returns a logger that drops everything. Useful as the
// default for optional Logger fields.
func DiscardLogger() *slog.Logger { return discardLogger }

// NewLogger builds a *slog.Logger writing to w. level is one of
// debug|info|warn|error (default info); format is text|json (default text).
// These are the values of the -log-level and -log-format flags on the
// octopocs and octoserved binaries.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("telemetry: unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (want text|json)", format)
	}
}

// WithLogger returns a context carrying the logger; retrieve it with
// Logger. A nil logger stores the discard logger.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	if l == nil {
		l = discardLogger
	}
	return context.WithValue(ctx, loggerKey, l)
}

// Logger returns the context's logger, or the discard logger when none was
// attached. Never returns nil.
func Logger(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey).(*slog.Logger); ok {
		return l
	}
	return discardLogger
}

// WithTrace returns a context carrying the trace; retrieve it with
// TraceFrom.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey, t)
}

// TraceFrom returns the context's trace, or nil (a valid no-op recorder)
// when none was attached.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey).(*Trace)
	return t
}
