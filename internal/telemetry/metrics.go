// Package telemetry is the dependency-free observability layer of the
// OCTOPOCS service: hand-rolled counters, gauges, and fixed-bucket
// histograms with a Prometheus text-exposition endpoint (registry.go),
// lightweight per-job trace spans kept in a bounded ring buffer (trace.go),
// and structured-logging plumbing over log/slog (log.go).
//
// Every instrument is safe on a nil receiver: a nil *Counter, *Gauge,
// *Histogram, *Trace, or *Span is a no-op sink. Disabled telemetry is
// therefore represented by nil pointers threaded through the engines, which
// keeps the pipeline hot path free of allocations and branches beyond a
// single nil check (alloc_test.go proves the zero-allocation property).
//
// Engines never touch an atomic per instruction: the VM and the symbolic
// executor aggregate into their existing local stats and flush once per run,
// so instrumented throughput matches uninstrumented throughput. The layer
// observes every phase P1–P4 (engine counters, per-phase trace spans) but
// participates in none of them.
//
// Concurrency: all instruments are safe for concurrent use — counters and
// gauges are atomics, histograms and trace rings take short internal locks —
// so one Registry serves every service worker and every frontier goroutine.
package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use and on a nil receiver (no-op sink).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. All methods are safe for
// concurrent use and on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// atomicFloat is a float64 accumulated with compare-and-swap.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// DurationBuckets is the default histogram layout for phase and queue
// latencies, in seconds: sub-millisecond through half a minute, roughly
// exponential. The fastest corpus verifications land in the first buckets
// and a stuck directed-symbolic-execution run saturates the last, so one
// layout serves every phase.
var DurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Histogram is a fixed-bucket histogram in the Prometheus style: bucket i
// counts observations v <= bounds[i], plus an implicit +Inf bucket. All
// methods are safe for concurrent use and on a nil receiver.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; non-cumulative
	sum    atomicFloat
	count  atomic.Uint64
}

// NewHistogram returns a histogram over the given strictly increasing
// upper bounds. The +Inf bucket is implicit; bounds must not contain it.
// NewHistogram panics on an invalid layout (a registration-time programming
// error, not an operational condition).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsInf(b, 0) || math.IsNaN(b) {
			panic("telemetry: histogram bounds must be finite")
		}
		if i > 0 && b <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bound >= v is the inclusive upper bucket; past the end is +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// snapshot returns the cumulative bucket counts (one per bound plus +Inf),
// the sum, and the total count, read without locking: each bucket is
// individually consistent, which is all the exposition format promises.
func (h *Histogram) snapshot() (cumulative []uint64, sum float64, count uint64) {
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return cumulative, h.sum.load(), h.count.Load()
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the containing bucket, the same estimate Prometheus's
// histogram_quantile computes server-side. Observations in the +Inf bucket
// clamp to the largest finite bound. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	cum, _, total := h.snapshot()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	for i, c := range cum {
		if float64(c) < rank {
			continue
		}
		if i == len(h.bounds) {
			// +Inf bucket: clamp to the largest finite bound.
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		var below uint64
		if i > 0 {
			lo = h.bounds[i-1]
			below = cum[i-1]
		}
		inBucket := c - below
		if inBucket == 0 {
			return h.bounds[i]
		}
		frac := (rank - float64(below)) / float64(inBucket)
		return lo + (h.bounds[i]-lo)*frac
	}
	return h.bounds[len(h.bounds)-1]
}
