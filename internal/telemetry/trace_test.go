package telemetry

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("job-1", "verify")
	root := tr.Start("verify", nil)
	root.SetAttr("pair", "s->t")
	p1 := tr.Start("p1", root)
	p1.End()
	reform := tr.Start("reform", root)
	e1 := tr.Start("ep_entry", reform)
	e1.SetAttr("seq", 1)
	e1.End()
	e2 := tr.Start("ep_entry", reform)
	e2.SetAttr("seq", 2)
	e2.End()
	reform.End()
	root.End()
	tr.Finish()

	snap := tr.Snapshot()
	if !snap.Finished {
		t.Fatal("trace not marked finished")
	}
	if snap.ID != "job-1" || snap.Name != "verify" {
		t.Fatalf("snapshot identity = %q/%q", snap.ID, snap.Name)
	}
	if len(snap.Spans) != 1 {
		t.Fatalf("want 1 root span, got %d", len(snap.Spans))
	}
	r := snap.Spans[0]
	if r.Name != "verify" || r.Attrs["pair"] != "s->t" {
		t.Fatalf("root = %+v", r)
	}
	if len(r.Children) != 2 {
		t.Fatalf("root children = %d, want 2 (p1, reform)", len(r.Children))
	}
	rf := r.Children[1]
	if rf.Name != "reform" || len(rf.Children) != 2 {
		t.Fatalf("reform span = %+v", rf)
	}
	if rf.Children[0].Attrs["seq"] != 1 || rf.Children[1].Attrs["seq"] != 2 {
		t.Fatalf("ep_entry attrs = %+v, %+v", rf.Children[0].Attrs, rf.Children[1].Attrs)
	}
	// The snapshot must marshal cleanly (it is served as JSON).
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	sp := tr.Start("x", nil)
	if sp != nil {
		t.Fatal("nil trace returned non-nil span")
	}
	sp.SetAttr("k", "v") // must not panic
	sp.End()
	tr.Finish()
	if snap := tr.Snapshot(); snap.ID != "" || len(snap.Spans) != 0 {
		t.Fatalf("nil snapshot = %+v", snap)
	}
}

// TestTraceRingEvictionConcurrent hammers the ring from many goroutines
// (the concurrent-jobs scenario) and then checks the bound and that only
// the newest insertions survive.
func TestTraceRingEvictionConcurrent(t *testing.T) {
	const capacity = 16
	ring := NewTraceRing(capacity)
	var wg sync.WaitGroup
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr := NewTrace(fmt.Sprintf("job-%d-%d", w, i), "verify")
				tr.Finish()
				ring.Put(tr)
			}
		}(w)
	}
	wg.Wait()
	if got := ring.Len(); got != capacity {
		t.Fatalf("ring length = %d, want %d", got, capacity)
	}
	// Every retained ID must be retrievable.
	for _, id := range ring.IDs() {
		if _, ok := ring.Get(id); !ok {
			t.Fatalf("retained id %q not retrievable", id)
		}
	}
	// Insertion order is preserved: inserting one more evicts the head.
	oldest := ring.IDs()[0]
	tr := NewTrace("job-final", "verify")
	ring.Put(tr)
	if _, ok := ring.Get(oldest); ok {
		t.Fatalf("oldest trace %q not evicted", oldest)
	}
	if _, ok := ring.Get("job-final"); !ok {
		t.Fatal("newest trace missing")
	}
}

func TestTraceRingReplaceSameID(t *testing.T) {
	ring := NewTraceRing(2)
	ring.Put(NewTrace("a", "verify"))
	ring.Put(NewTrace("a", "verify"))
	ring.Put(NewTrace("b", "verify"))
	if got := ring.Len(); got != 2 {
		t.Fatalf("len = %d, want 2 (same-ID put must not consume capacity)", got)
	}
}

// TestSpanRingOverflow fills a trace past its span capacity and checks the
// drop-oldest contract: the snapshot retains exactly the newest spans in
// insertion order, counts every eviction, and promotes children of evicted
// parents to roots.
func TestSpanRingOverflow(t *testing.T) {
	tr := NewTraceWithCapacity("job-ring", "verify", 4)
	parent := tr.Start("p1", nil) // will be evicted
	names := []string{"a", "b", "c", "d", "e", "f"}
	for _, n := range names {
		tr.Start(n, parent).End()
	}
	parent.End()
	tr.Finish()

	snap := tr.Snapshot()
	if snap.DroppedSpans != 3 { // 7 started, capacity 4
		t.Fatalf("dropped = %d, want 3", snap.DroppedSpans)
	}
	// p1, a and b were evicted; c..f survive as roots (their parent is
	// gone) in insertion order.
	var got []string
	for _, sp := range snap.Spans {
		got = append(got, sp.Name)
	}
	want := []string{"c", "d", "e", "f"}
	if len(got) != len(want) {
		t.Fatalf("retained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("retained %v, want %v", got, want)
		}
	}
}

// TestSpanRingUnderCapacity checks that a trace below capacity drops
// nothing and keeps the parent/child tree intact.
func TestSpanRingUnderCapacity(t *testing.T) {
	tr := NewTraceWithCapacity("job-small", "verify", 8)
	parent := tr.Start("p1", nil)
	tr.Start("child", parent).End()
	parent.End()
	tr.Finish()
	snap := tr.Snapshot()
	if snap.DroppedSpans != 0 {
		t.Fatalf("dropped = %d, want 0", snap.DroppedSpans)
	}
	if len(snap.Spans) != 1 || len(snap.Spans[0].Children) != 1 {
		t.Fatalf("tree shape wrong: %+v", snap.Spans)
	}
}
