package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

// TestHistogramBucketBoundaries pins the inclusive-upper-bound semantics:
// an observation exactly at a bound lands in that bound's bucket, and one
// just above spills into the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.0, 1.5, 2.0, 2.5, 4.0, 99} {
		h.Observe(v)
	}
	cum, sum, count := h.snapshot()
	// v<=1: {0.5, 1.0}; v<=2 adds {1.5, 2.0}; v<=4 adds {2.5, 4.0}; +Inf adds {99}.
	want := []uint64{2, 4, 6, 7}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d (full: %v)", i, cum[i], w, cum)
		}
	}
	if count != 7 {
		t.Errorf("count = %d, want 7", count)
	}
	wantSum := 0.5 + 1 + 1.5 + 2 + 2.5 + 4 + 99
	if math.Abs(sum-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", sum, wantSum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 40})
	// 10 observations uniformly in (0,10]: the q-quantile interpolates
	// linearly inside the first bucket.
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	if got := h.Quantile(0.5); math.Abs(got-5) > 1e-9 {
		t.Errorf("p50 = %v, want 5 (interpolated mid-bucket)", got)
	}
	if got := h.Quantile(1.0); math.Abs(got-10) > 1e-9 {
		t.Errorf("p100 = %v, want 10 (top of first bucket)", got)
	}

	// Add 10 observations in (20,40]: p50 stays in bucket 1, p90 moves to
	// bucket 3. rank(0.9) = 18; bucket 3 holds observations 11..20, so the
	// interpolation lands 8/10 into (20,40] = 36.
	for i := 0; i < 10; i++ {
		h.Observe(30)
	}
	if got := h.Quantile(0.9); math.Abs(got-36) > 1e-9 {
		t.Errorf("p90 = %v, want 36", got)
	}

	// +Inf observations clamp to the largest finite bound.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(1000)
	if got := h2.Quantile(0.5); got != 2 {
		t.Errorf("quantile in +Inf bucket = %v, want clamp to 2", got)
	}

	// Empty histogram.
	if got := NewHistogram([]float64{1}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram(DurationBuckets)
	h.ObserveDuration(50 * time.Millisecond)
	if got := h.Count(); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
	if got := h.Sum(); math.Abs(got-0.05) > 1e-9 {
		t.Fatalf("sum = %v, want 0.05", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 3})
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(g % 4))
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
}

func TestNewHistogramValidation(t *testing.T) {
	for _, bounds := range [][]float64{
		{},
		{1, 1},
		{2, 1},
		{1, math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", nil)
	b := r.Counter("x_total", "help", nil)
	if a != b {
		t.Fatalf("re-registering the same counter returned a different instance")
	}
	h1 := r.Histogram("h_seconds", "help", Labels{"phase": "p1"}, []float64{1})
	h2 := r.Histogram("h_seconds", "help", Labels{"phase": "p2"}, []float64{1})
	if h1 == h2 {
		t.Fatalf("distinct label sets share an instance")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("kind clash did not panic")
			}
		}()
		r.Gauge("x_total", "help", nil)
	}()
}

func TestNilRegistryReturnsNilInstruments(t *testing.T) {
	var r *Registry
	if c := r.Counter("a", "b", nil); c != nil {
		t.Errorf("nil registry returned non-nil counter")
	}
	if g := r.Gauge("a", "b", nil); g != nil {
		t.Errorf("nil registry returned non-nil gauge")
	}
	if h := r.Histogram("a", "b", nil, nil); h != nil {
		t.Errorf("nil registry returned non-nil histogram")
	}
	r.CounterFunc("a", "b", nil, func() float64 { return 0 })
	r.GaugeFunc("a", "b", nil, func() float64 { return 0 })
	if err := r.WriteText(nil); err != nil {
		t.Errorf("nil registry WriteText: %v", err)
	}
}
