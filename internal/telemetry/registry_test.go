package telemetry

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestExpositionGolden pins the exact Prometheus text format: HELP/TYPE
// headers, family and series ordering, label rendering, histogram
// bucket/sum/count lines with cumulative counts and the +Inf bucket.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("octopocs_symex_states_total", "States explored.", nil)
	c.Add(3)
	g := r.Gauge("octopocs_queue_depth", "Jobs waiting.", nil)
	g.Set(2)
	h := r.Histogram("octopocs_phase_seconds", "Phase latency.", Labels{"phase": "p1"}, []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.GaugeFunc("octopocs_workers", "Worker pool size.", nil, func() float64 { return 4 })
	r.CounterFunc("octopocs_cache_hits_total", "Cache hits.", Labels{"class": "p1"}, func() float64 { return 9 })

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP octopocs_cache_hits_total Cache hits.
# TYPE octopocs_cache_hits_total counter
octopocs_cache_hits_total{class="p1"} 9
# HELP octopocs_phase_seconds Phase latency.
# TYPE octopocs_phase_seconds histogram
octopocs_phase_seconds_bucket{phase="p1",le="0.1"} 1
octopocs_phase_seconds_bucket{phase="p1",le="1"} 2
octopocs_phase_seconds_bucket{phase="p1",le="+Inf"} 3
octopocs_phase_seconds_sum{phase="p1"} 5.55
octopocs_phase_seconds_count{phase="p1"} 3
# HELP octopocs_queue_depth Jobs waiting.
# TYPE octopocs_queue_depth gauge
octopocs_queue_depth 2
# HELP octopocs_symex_states_total States explored.
# TYPE octopocs_symex_states_total counter
octopocs_symex_states_total 3
# HELP octopocs_workers Worker pool size.
# TYPE octopocs_workers gauge
octopocs_workers 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A.", nil).Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "a_total 1") {
		t.Errorf("body missing sample:\n%s", body)
	}
}

func TestMultiLabelOrdering(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "M.", Labels{"b": "2", "a": "1"}).Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `m_total{a="1",b="2"} 1`) {
		t.Errorf("labels not sorted:\n%s", sb.String())
	}
}
