package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Labels attaches constant dimensions to a metric at registration time,
// e.g. Labels{"phase": "p1"}. Per-observation label values do not exist:
// every (name, labels) series is registered once and written through a
// pointer, which is what keeps the instruments allocation-free.
type Labels map[string]string

type metricKind int

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k metricKind) exposition() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// series is one labeled instance within a family.
type series struct {
	labels string // rendered `a="b",c="d"` (no braces), "" when unlabeled
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	fn     func() float64
}

// family groups every series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]*series
	order  []string
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format (version 0.0.4). All methods are safe for concurrent
// use. Registration methods on a nil *Registry return nil instruments, so
// "telemetry disabled" propagates naturally to every nil-safe sink.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels renders a label set deterministically (keys sorted).
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}

// register returns the series for (name, labels), creating family and series
// as needed. Re-registering an existing series with the same kind returns it
// (idempotent); a kind clash panics — it is a naming bug, not a runtime
// condition.
func (r *Registry) register(name, help string, kind metricKind, labels Labels) (*series, bool) {
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = fam
		r.order = append(r.order, name)
		sort.Strings(r.order)
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)",
			name, kind.exposition(), fam.kind.exposition()))
	}
	ls := renderLabels(labels)
	if s, ok := fam.series[ls]; ok {
		return s, false
	}
	s := &series{labels: ls}
	fam.series[ls] = s
	fam.order = append(fam.order, ls)
	sort.Strings(fam.order)
	return s, true
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, fresh := r.register(name, help, kindCounter, labels)
	if fresh {
		s.ctr = &Counter{}
	}
	return s.ctr
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, fresh := r.register(name, help, kindGauge, labels)
	if fresh {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram registers (or returns the existing) histogram series over the
// given bucket bounds (DurationBuckets when nil).
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DurationBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, fresh := r.register(name, help, kindHistogram, labels)
	if fresh {
		s.hist = NewHistogram(bounds)
	}
	return s.hist
}

// CounterFunc registers a counter whose value is collected at scrape time.
// Useful for monotonic counts owned by another component (e.g. cache hit
// totals), avoiding double accounting. fn must be safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.register(name, help, kindCounterFunc, labels)
	s.fn = fn
}

// GaugeFunc registers a gauge collected at scrape time (e.g. queue depth).
// fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.register(name, help, kindGaugeFunc, labels)
	s.fn = fn
}

// formatFloat renders a sample value the way Prometheus clients do.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeSample writes one `name{labels} value` line. extraLabel (e.g. the
// histogram le) is appended after the registered labels.
func writeSample(w io.Writer, name, labels, extraLabel, value string) error {
	var err error
	switch {
	case labels == "" && extraLabel == "":
		_, err = fmt.Fprintf(w, "%s %s\n", name, value)
	case labels == "":
		_, err = fmt.Fprintf(w, "%s{%s} %s\n", name, extraLabel, value)
	case extraLabel == "":
		_, err = fmt.Fprintf(w, "%s{%s} %s\n", name, labels, value)
	default:
		_, err = fmt.Fprintf(w, "%s{%s,%s} %s\n", name, labels, extraLabel, value)
	}
	return err
}

// WriteText renders every family in the text exposition format, families
// sorted by name and series by label string, so output is deterministic.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		fam := r.families[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			fam.name, fam.help, fam.name, fam.kind.exposition()); err != nil {
			return err
		}
		for _, ls := range fam.order {
			s := fam.series[ls]
			if err := writeSeries(w, fam, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, fam *family, s *series) error {
	switch fam.kind {
	case kindCounter:
		return writeSample(w, fam.name, s.labels, "", strconv.FormatUint(s.ctr.Value(), 10))
	case kindGauge:
		return writeSample(w, fam.name, s.labels, "", strconv.FormatInt(s.gauge.Value(), 10))
	case kindCounterFunc, kindGaugeFunc:
		return writeSample(w, fam.name, s.labels, "", formatFloat(s.fn()))
	case kindHistogram:
		cum, sum, count := s.hist.snapshot()
		for i, b := range s.hist.bounds {
			le := `le="` + formatFloat(b) + `"`
			if err := writeSample(w, fam.name+"_bucket", s.labels, le, strconv.FormatUint(cum[i], 10)); err != nil {
				return err
			}
		}
		if err := writeSample(w, fam.name+"_bucket", s.labels, `le="+Inf"`, strconv.FormatUint(cum[len(cum)-1], 10)); err != nil {
			return err
		}
		if err := writeSample(w, fam.name+"_sum", s.labels, "", formatFloat(sum)); err != nil {
			return err
		}
		return writeSample(w, fam.name+"_count", s.labels, "", strconv.FormatUint(count, 10))
	default:
		return fmt.Errorf("telemetry: unknown metric kind %d", fam.kind)
	}
}

// Handler serves the registry at GET in the text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}
