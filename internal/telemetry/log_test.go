package telemetry

import (
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestNewLoggerLevelsAndFormats(t *testing.T) {
	var b strings.Builder
	lg, err := NewLogger(&b, "debug", "text")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hello", "job", "job-1")
	if out := b.String(); !strings.Contains(out, "hello") || !strings.Contains(out, "job=job-1") {
		t.Errorf("text output = %q", out)
	}

	b.Reset()
	lg, err = NewLogger(&b, "warn", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("dropped")
	lg.Warn("kept", "pair", "s->t")
	line := strings.TrimSpace(b.String())
	if strings.Contains(line, "dropped") {
		t.Errorf("info line not filtered at warn level: %q", line)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("json output not parseable: %v (%q)", err, line)
	}
	if rec["msg"] != "kept" || rec["pair"] != "s->t" {
		t.Errorf("json record = %v", rec)
	}

	if _, err := NewLogger(&b, "loud", "text"); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := NewLogger(&b, "info", "xml"); err == nil {
		t.Error("bad format accepted")
	}
}

func TestLoggerContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if got := Logger(ctx); got != discardLogger {
		t.Fatal("empty context did not yield the discard logger")
	}
	var b strings.Builder
	lg, _ := NewLogger(&b, "info", "text")
	ctx = WithLogger(ctx, lg)
	Logger(ctx).Info("via-ctx")
	if !strings.Contains(b.String(), "via-ctx") {
		t.Errorf("context logger not used: %q", b.String())
	}
	if got := Logger(WithLogger(context.Background(), nil)); got != discardLogger {
		t.Error("WithLogger(nil) did not fall back to discard")
	}
}

func TestTraceContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if TraceFrom(ctx) != nil {
		t.Fatal("empty context yielded a trace")
	}
	tr := NewTrace("id", "verify")
	if got := TraceFrom(WithTrace(ctx, tr)); got != tr {
		t.Fatal("trace not round-tripped through context")
	}
}

func TestDiscardLogger(t *testing.T) {
	lg := DiscardLogger()
	if lg == nil {
		t.Fatal("nil discard logger")
	}
	lg.Error("goes nowhere") // must not panic
	if lg.Handler().Enabled(context.Background(), slog.LevelError) {
		t.Error("discard handler claims enabled")
	}
}
