package telemetry

import (
	"context"
	"testing"
	"time"
)

// TestNilTelemetryZeroAlloc proves the acceptance property that disabled
// telemetry (nil registry → nil instruments everywhere) adds zero
// allocations on the pipeline hot path: every operation an engine performs
// against a nil sink must not allocate.
func TestNilTelemetryZeroAlloc(t *testing.T) {
	var (
		c  *Counter
		g  *Gauge
		h  *Histogram
		tr *Trace
		sp *Span
	)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(17)
		_ = c.Value()
		g.Set(3)
		g.Add(-1)
		h.Observe(0.25)
		h.ObserveDuration(time.Millisecond)
		_ = h.Quantile(0.5)
		s := tr.Start("phase", sp)
		s.SetAttr("k", 1)
		s.End()
		tr.Finish()
	})
	if allocs != 0 {
		t.Fatalf("nil telemetry ops allocated %.1f times per run, want 0", allocs)
	}
}

// TestDiscardLoggerZeroAllocWhenDisabled checks that a context without a
// logger resolves to the discard logger without allocating, and that a
// disabled log call with pre-built arguments does not allocate either.
func TestDiscardLoggerZeroAllocWhenDisabled(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		l := Logger(ctx)
		if l.Enabled(ctx, -8) {
			t.Error("discard logger reports enabled")
		}
	})
	if allocs != 0 {
		t.Fatalf("Logger(ctx) allocated %.1f times per run, want 0", allocs)
	}
}

func BenchmarkNilCounterAdd(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkNilHistogramObserve(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.1)
	}
}

func BenchmarkNilTraceSpan(b *testing.B) {
	var tr *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("x", nil)
		sp.End()
	}
}

func BenchmarkLiveHistogramObserve(b *testing.B) {
	h := NewHistogram(DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.01)
	}
}
