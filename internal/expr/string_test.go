package expr

import (
	"strings"
	"testing"
)

func TestStringRendersEveryOperator(t *testing.T) {
	x, y := Sym(0), Sym(1)
	tests := []struct {
		e    *Expr
		want string
	}{
		{Bin(OpAdd, x, y), "(in[0] + in[1])"},
		{Bin(OpSub, x, y), "(in[0] - in[1])"},
		{Bin(OpMul, x, y), "(in[0] * in[1])"},
		{Bin(OpDiv, x, y), "(in[0] / in[1])"},
		{Bin(OpMod, x, y), "(in[0] % in[1])"},
		{Bin(OpAnd, x, y), "(in[0] & in[1])"},
		{Bin(OpOr, x, y), "(in[0] | in[1])"},
		{Bin(OpXor, x, y), "(in[0] ^ in[1])"},
		{Bin(OpShl, x, y), "(in[0] << in[1])"},
		{Bin(OpShr, x, y), "(in[0] >> in[1])"},
		{Bin(OpEq, x, y), "(in[0] == in[1])"},
		{Bin(OpNe, x, y), "(in[0] != in[1])"},
		{Bin(OpLt, x, y), "(in[0] <u in[1])"},
		{Bin(OpLe, x, y), "(in[0] <=u in[1])"},
		{Bin(OpSLt, x, y), "(in[0] <s in[1])"},
		{Bin(OpSLe, x, y), "(in[0] <=s in[1])"},
		{Const(0x2A), "0x2a"},
	}
	for _, tt := range tests {
		if got := tt.e.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

// TestMaskRewrites pins the byte-decomposition collapses that keep
// symbolic-store round trips small.
func TestMaskRewrites(t *testing.T) {
	b0, b1 := Sym(0), Sym(1)
	word := Bin(OpOr, b0, Bin(OpShl, b1, Const(8)))

	// Extracting byte 0 of the 2-byte word collapses to the byte symbol.
	lo := Bin(OpAnd, word, Const(0xFF))
	if !lo.Equal(b0) {
		t.Errorf("low-byte extract = %v, want in[0]", lo)
	}
	// Extracting byte 1 collapses through shift distribution.
	hi := Bin(OpAnd, Bin(OpShr, word, Const(8)), Const(0xFF))
	if !hi.Equal(b1) {
		t.Errorf("high-byte extract = %v, want in[1]", hi)
	}
	// Reassembling the extracted bytes reproduces the original word.
	again := Bin(OpOr, lo, Bin(OpShl, hi, Const(8)))
	if !again.Equal(word) {
		t.Errorf("reassembly = %v, want %v", again, word)
	}
	// Masking with a superset of the possible bits is the identity.
	if e := Bin(OpAnd, b0, Const(0xFFFF)); !e.Equal(b0) {
		t.Errorf("superset mask = %v, want in[0]", e)
	}
	// Masking with disjoint bits is zero.
	if e := Bin(OpAnd, Bin(OpShl, b0, Const(8)), Const(0xFF)); !e.Equal(Zero) {
		t.Errorf("disjoint mask = %v, want 0", e)
	}
	// Shifting all possible bits out is zero.
	if e := Bin(OpShr, b0, Const(8)); !e.Equal(Zero) {
		t.Errorf("over-shift = %v, want 0", e)
	}
	// Shl(Shr(x,8),8) restores values with no low bits.
	x := Bin(OpShl, b0, Const(8))
	if e := Bin(OpShl, Bin(OpShr, x, Const(8)), Const(8)); !e.Equal(x) {
		t.Errorf("shift round trip = %v, want %v", e, x)
	}
}

func TestOpStringPlaceholders(t *testing.T) {
	for op := OpConst; op <= OpSLe; op++ {
		if s := op.String(); strings.HasPrefix(s, "op(") {
			t.Errorf("Op(%d) renders as placeholder %q", op, s)
		}
	}
	if s := Op(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown op renders as %q", s)
	}
}
