// Package expr provides the symbolic expression language shared by the
// symbolic executor and the constraint solver (phases P2 and P3 build path
// conditions out of these nodes; P3.3 hands them to the solver). Expressions
// are immutable trees over 64-bit words whose leaves are constants and
// input-file byte symbols (each symbol ranges over 0..255, zero-extended to
// a word).
//
// Constructors simplify aggressively — constant folding, neutral and
// absorbing elements, constant re-association, comparison inversion — so
// that the constraints reaching the solver from file-format parsing code
// are mostly small byte-equality and range facts.
//
// Concurrency: nodes are immutable after construction and safe to share
// between goroutines. The lazily computed per-node caches (symbol support,
// possible-bits mask, structural fingerprint) are published with atomic
// operations; concurrent computation is idempotent, so the worst case is
// duplicated work, never a torn read. This is what lets the parallel
// symbolic-execution frontier share expression trees between sibling states
// without cloning them.
package expr

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Op enumerates expression node kinds.
type Op uint8

// Node kinds. Comparison nodes evaluate to 0 or 1.
const (
	OpConst Op = iota + 1
	OpSym
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpEq
	OpNe
	OpLt // unsigned
	OpLe // unsigned
	OpSLt
	OpSLe
)

// String renders the operator.
func (o Op) String() string {
	switch o {
	case OpConst:
		return "const"
	case OpSym:
		return "sym"
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpAnd:
		return "&"
	case OpOr:
		return "|"
	case OpXor:
		return "^"
	case OpShl:
		return "<<"
	case OpShr:
		return ">>"
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	case OpLt:
		return "<u"
	case OpLe:
		return "<=u"
	case OpSLt:
		return "<s"
	case OpSLe:
		return "<=s"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Expr is one immutable expression node. The unexported fields are lazy
// caches published atomically (see the package comment); everything else is
// written once by the constructor and never mutated.
type Expr struct {
	Op  Op
	Val uint64 // OpConst
	Sym int    // OpSym: input byte index
	X   *Expr
	Y   *Expr

	syms atomic.Pointer[[]int]    // cached sorted support
	mask atomic.Pointer[maskInfo] // cached possible-bits bound
	fp   atomic.Uint64            // cached structural fingerprint; 0 = unset
}

// maskInfo is the cached result of computeMask.
type maskInfo struct {
	mask uint64
	ok   bool
}

// Const builds a constant.
func Const(v uint64) *Expr { return &Expr{Op: OpConst, Val: v} }

// Sym builds the symbol for input byte i.
func Sym(i int) *Expr { return &Expr{Op: OpSym, Sym: i} }

// One and Zero are the boolean constants produced by comparisons.
var (
	One  = Const(1)
	Zero = Const(0)
)

// IsConst reports whether e is a constant and returns its value.
func (e *Expr) IsConst() (uint64, bool) {
	if e.Op == OpConst {
		return e.Val, true
	}
	return 0, false
}

// IsBool reports whether e is a comparison node (evaluates to 0/1).
func (e *Expr) IsBool() bool {
	switch e.Op {
	case OpEq, OpNe, OpLt, OpLe, OpSLt, OpSLe:
		return true
	}
	if e.Op == OpConst {
		return e.Val == 0 || e.Val == 1
	}
	return false
}

func isCommutative(op Op) bool {
	switch op {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpEq, OpNe:
		return true
	}
	return false
}

// apply computes a binary operation on concrete values. div/mod by zero
// yields (0, false); the executor turns that into a crash before ever
// building the expression.
func apply(op Op, a, b uint64) (uint64, bool) {
	switch op {
	case OpAdd:
		return a + b, true
	case OpSub:
		return a - b, true
	case OpMul:
		return a * b, true
	case OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case OpMod:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case OpAnd:
		return a & b, true
	case OpOr:
		return a | b, true
	case OpXor:
		return a ^ b, true
	case OpShl:
		if b >= 64 {
			return 0, true
		}
		return a << b, true
	case OpShr:
		if b >= 64 {
			return 0, true
		}
		return a >> b, true
	case OpEq:
		return b2w(a == b), true
	case OpNe:
		return b2w(a != b), true
	case OpLt:
		return b2w(a < b), true
	case OpLe:
		return b2w(a <= b), true
	case OpSLt:
		return b2w(int64(a) < int64(b)), true
	case OpSLe:
		return b2w(int64(a) <= int64(b)), true
	default:
		panic(fmt.Sprintf("expr: apply on %v", op))
	}
}

func b2w(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Mask conservatively computes the set of bits e can have set. ok is
// false when no useful bound is known. The result is cached on the node.
func (e *Expr) Mask() (uint64, bool) {
	if mi := e.mask.Load(); mi != nil {
		return mi.mask, mi.ok
	}
	m, ok := computeMask(e)
	e.mask.Store(&maskInfo{mask: m, ok: ok})
	return m, ok
}

func computeMask(e *Expr) (uint64, bool) {
	switch e.Op {
	case OpConst:
		return e.Val, true
	case OpSym:
		return 0xFF, true
	case OpOr, OpXor:
		mx, okX := e.X.Mask()
		my, okY := e.Y.Mask()
		if okX && okY {
			return mx | my, true
		}
	case OpAnd:
		mx, okX := e.X.Mask()
		my, okY := e.Y.Mask()
		switch {
		case okX && okY:
			return mx & my, true
		case okX:
			return mx, true
		case okY:
			return my, true
		}
	case OpShl:
		if k, ok := e.Y.IsConst(); ok && k < 64 {
			if m, ok := e.X.Mask(); ok {
				return m << k, true
			}
		}
	case OpShr:
		if k, ok := e.Y.IsConst(); ok && k < 64 {
			if m, ok := e.X.Mask(); ok {
				return m >> k, true
			}
		}
	case OpAdd:
		// Sum of bounded values is bounded by the next power of two.
		mx, okX := e.X.Mask()
		my, okY := e.Y.Mask()
		if okX && okY && mx < 1<<62 && my < 1<<62 {
			sum := mx + my
			out := uint64(1)
			for out <= sum {
				out <<= 1
			}
			return out - 1, true
		}
	case OpEq, OpNe, OpLt, OpLe, OpSLt, OpSLe:
		return 1, true
	}
	return 0, false
}

// Bin builds x <op> y with simplification.
func Bin(op Op, x, y *Expr) *Expr {
	xv, xc := x.IsConst()
	yv, yc := y.IsConst()
	if xc && yc {
		if v, ok := apply(op, xv, yv); ok {
			return Const(v)
		}
	}
	// Canonicalize: constant on the right for commutative ops.
	if xc && !yc && isCommutative(op) {
		x, y = y, x
		xv, xc, yv, yc = yv, yc, xv, xc
	}
	if yc {
		switch op {
		case OpAdd, OpOr, OpXor, OpShl, OpShr:
			if yv == 0 {
				return x
			}
		case OpSub:
			if yv == 0 {
				return x
			}
		case OpMul:
			if yv == 0 {
				return Zero
			}
			if yv == 1 {
				return x
			}
		case OpAnd:
			if yv == 0 {
				return Zero
			}
			if yv == ^uint64(0) {
				return x
			}
		case OpDiv:
			if yv == 1 {
				return x
			}
		}
		// Re-associate constants: (x op c1) op c2 → x op (c1∘c2).
		if x.Op == op && (op == OpAdd || op == OpAnd || op == OpOr || op == OpXor || op == OpMul) {
			if c1, ok := x.Y.IsConst(); ok {
				if v, ok := apply(op, c1, yv); ok {
					return Bin(op, x.X, Const(v))
				}
			}
		}
		// Mask-based rewrites. These collapse the byte-decomposition
		// round trips produced by symbolic stores and loads
		// (And(Shr(...)..., 0xFF) reassembled with Or/Shl), keeping
		// path constraints small.
		if e := maskRewrite(op, x, yv); e != nil {
			return e
		}
		// Comparison folding on byte symbols: a symbol is 0..255, so
		// several comparisons with large constants are decidable.
		if x.Op == OpSym {
			switch op {
			case OpEq:
				if yv > 255 {
					return Zero
				}
			case OpNe:
				if yv > 255 {
					return One
				}
			case OpLt:
				if yv > 255 {
					return One
				}
			case OpLe:
				if yv >= 255 {
					return One
				}
			}
		}
	}
	switch op {
	case OpXor, OpSub:
		if x.Equal(y) {
			return Zero
		}
	case OpEq, OpLe, OpSLe:
		if x.Equal(y) {
			return One
		}
	case OpNe, OpLt, OpSLt:
		if x.Equal(y) {
			return Zero
		}
	case OpAnd, OpOr:
		if x.Equal(y) {
			return x
		}
	}
	return &Expr{Op: op, X: x, Y: y}
}

// maskRewrite applies possible-bits reasoning to x <op> const. A nil
// result means no rewrite applies.
func maskRewrite(op Op, x *Expr, c uint64) *Expr {
	switch op {
	case OpAnd:
		if m, ok := x.Mask(); ok {
			if m&c == m {
				return x // the mask keeps every possible bit
			}
			if m&c == 0 {
				return Zero
			}
		}
		// Distribute over Or when a side collapses:
		// And(Or(a,b), c) → Or(And(a,c), And(b,c)).
		if x.Op == OpOr {
			ma, okA := x.X.Mask()
			mb, okB := x.Y.Mask()
			if okA && okB && (ma&c == 0 || mb&c == 0 || ma&c == ma || mb&c == mb) {
				return Bin(OpOr, Bin(OpAnd, x.X, Const(c)), Bin(OpAnd, x.Y, Const(c)))
			}
		}
	case OpShr:
		if c >= 64 {
			return Zero
		}
		if m, ok := x.Mask(); ok && m>>c == 0 {
			return Zero
		}
		// Shr(Shl(v,c),c) → v when the left shift lost no bits.
		if x.Op == OpShl {
			if k, ok := x.Y.IsConst(); ok && k == c {
				if m, ok := x.X.Mask(); ok && m<<c>>c == m {
					return x.X
				}
			}
		}
		// Distribute over Or when a side collapses.
		if x.Op == OpOr {
			ma, okA := x.X.Mask()
			mb, okB := x.Y.Mask()
			if okA && okB && (ma>>c == 0 || mb>>c == 0) {
				return Bin(OpOr, Bin(OpShr, x.X, Const(c)), Bin(OpShr, x.Y, Const(c)))
			}
		}
	case OpShl:
		if c >= 64 {
			return Zero
		}
		// Shl(Shr(v,c),c) → v when v has no low bits to lose.
		if x.Op == OpShr {
			if k, ok := x.Y.IsConst(); ok && k == c {
				if m, ok := x.X.Mask(); ok && m&((1<<c)-1) == 0 {
					return x.X
				}
			}
		}
	}
	return nil
}

// Not returns a boolean expression that is 1 iff e is 0.
func Not(e *Expr) *Expr {
	if v, ok := e.IsConst(); ok {
		return Const(b2w(v == 0))
	}
	switch e.Op {
	case OpEq:
		return Bin(OpNe, e.X, e.Y)
	case OpNe:
		return Bin(OpEq, e.X, e.Y)
	case OpLt: // ¬(x<y) = y<=x
		return Bin(OpLe, e.Y, e.X)
	case OpLe:
		return Bin(OpLt, e.Y, e.X)
	case OpSLt:
		return Bin(OpSLe, e.Y, e.X)
	case OpSLe:
		return Bin(OpSLt, e.Y, e.X)
	default:
		return Bin(OpEq, e, Zero)
	}
}

// Bool returns a boolean (0/1) expression that is 1 iff e is non-zero.
func Bool(e *Expr) *Expr {
	if v, ok := e.IsConst(); ok {
		return Const(b2w(v != 0))
	}
	if e.IsBool() {
		return e
	}
	return Bin(OpNe, e, Zero)
}

// Equal reports structural equality.
func (e *Expr) Equal(o *Expr) bool {
	if e == o {
		return true
	}
	if e == nil || o == nil || e.Op != o.Op {
		return false
	}
	switch e.Op {
	case OpConst:
		return e.Val == o.Val
	case OpSym:
		return e.Sym == o.Sym
	default:
		return e.X.Equal(o.X) && e.Y.Equal(o.Y)
	}
}

// Eval evaluates e under a partial assignment: lookup returns the value of
// a symbol and whether it is assigned. The second result is false when an
// unassigned symbol (or a division by zero) blocks evaluation.
func (e *Expr) Eval(lookup func(sym int) (uint64, bool)) (uint64, bool) {
	switch e.Op {
	case OpConst:
		return e.Val, true
	case OpSym:
		return lookup(e.Sym)
	default:
		x, ok := e.X.Eval(lookup)
		if !ok {
			return 0, false
		}
		y, ok := e.Y.Eval(lookup)
		if !ok {
			return 0, false
		}
		return apply(e.Op, x, y)
	}
}

// EvalConcrete evaluates e under a total assignment given as a byte slice
// indexed by symbol; out-of-range symbols read as 0.
func (e *Expr) EvalConcrete(input []byte) uint64 {
	v, ok := e.Eval(func(sym int) (uint64, bool) {
		if sym >= 0 && sym < len(input) {
			return uint64(input[sym]), true
		}
		return 0, true
	})
	if !ok {
		// Division by zero under a total assignment; define as 0, the
		// solver never accepts such models for real constraints.
		return 0
	}
	return v
}

// Syms returns the sorted distinct symbols appearing in e. The result is
// cached; callers must not modify it.
func (e *Expr) Syms() []int {
	if p := e.syms.Load(); p != nil {
		return *p
	}
	seen := map[int]bool{}
	e.collect(seen)
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	// insertion sort; supports are tiny
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if len(out) == 0 {
		out = []int{}
	}
	e.syms.Store(&out)
	return out
}

// fingerprint mixing constants (splitmix64 finalizer multipliers) and
// per-field seeds; the exact values only need to be fixed and well mixed.
const (
	fpMul1 = 0xbf58476d1ce4e5b9
	fpMul2 = 0x94d049bb133111eb
)

// fpMix is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// permutation used to combine fingerprint components.
func fpMix(x uint64) uint64 {
	x ^= x >> 30
	x *= fpMul1
	x ^= x >> 27
	x *= fpMul2
	x ^= x >> 31
	return x
}

// Fingerprint returns a 64-bit structural hash of e: equal structures have
// equal fingerprints, and distinct structures collide with the odds of a
// well-mixed 64-bit hash (no adversarial inputs exist here — every
// expression is built by the executor from program text). The result is
// cached on the node, so fingerprinting a constraint set costs one tree
// walk the first time and O(1) afterwards. Used by the solver's memoized
// satisfiability cache to canonicalize constraint sets.
func (e *Expr) Fingerprint() uint64 {
	if fp := e.fp.Load(); fp != 0 {
		return fp
	}
	var h uint64
	switch e.Op {
	case OpConst:
		h = fpMix(uint64(e.Op) ^ fpMix(e.Val))
	case OpSym:
		h = fpMix(uint64(e.Op)<<32 ^ fpMix(uint64(e.Sym)+1))
	default:
		// Mix the operator with both child fingerprints, order-sensitively
		// (x-y and y-x must differ).
		h = fpMix(uint64(e.Op) + fpMix(e.X.Fingerprint()) + 3*fpMix(e.Y.Fingerprint()))
	}
	if h == 0 {
		h = 1 // 0 is the "unset" sentinel
	}
	e.fp.Store(h)
	return h
}

func (e *Expr) collect(seen map[int]bool) {
	switch e.Op {
	case OpConst:
	case OpSym:
		seen[e.Sym] = true
	default:
		e.X.collect(seen)
		e.Y.collect(seen)
	}
}

// Size returns the node count, a proxy for expression complexity.
func (e *Expr) Size() int {
	switch e.Op {
	case OpConst, OpSym:
		return 1
	default:
		return 1 + e.X.Size() + e.Y.Size()
	}
}

// String renders the expression in infix form.
func (e *Expr) String() string {
	var sb strings.Builder
	e.render(&sb)
	return sb.String()
}

func (e *Expr) render(sb *strings.Builder) {
	switch e.Op {
	case OpConst:
		fmt.Fprintf(sb, "%#x", e.Val)
	case OpSym:
		fmt.Fprintf(sb, "in[%d]", e.Sym)
	default:
		sb.WriteByte('(')
		e.X.render(sb)
		fmt.Fprintf(sb, " %s ", e.Op)
		e.Y.render(sb)
		sb.WriteByte(')')
	}
}
