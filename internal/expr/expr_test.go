package expr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstFold(t *testing.T) {
	tests := []struct {
		name string
		e    *Expr
		want uint64
	}{
		{"add", Bin(OpAdd, Const(2), Const(3)), 5},
		{"sub wraps", Bin(OpSub, Const(0), Const(1)), ^uint64(0)},
		{"mul", Bin(OpMul, Const(6), Const(7)), 42},
		{"div", Bin(OpDiv, Const(42), Const(5)), 8},
		{"mod", Bin(OpMod, Const(42), Const(5)), 2},
		{"and", Bin(OpAnd, Const(0xF0), Const(0x3C)), 0x30},
		{"shl", Bin(OpShl, Const(1), Const(8)), 256},
		{"shl overflow", Bin(OpShl, Const(1), Const(70)), 0},
		{"shr", Bin(OpShr, Const(256), Const(8)), 1},
		{"eq true", Bin(OpEq, Const(3), Const(3)), 1},
		{"ne", Bin(OpNe, Const(3), Const(3)), 0},
		{"lt", Bin(OpLt, Const(2), Const(3)), 1},
		{"slt", Bin(OpSLt, Const(^uint64(0)), Const(0)), 1},
		{"sle", Bin(OpSLe, Const(5), Const(5)), 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if v, ok := tt.e.IsConst(); !ok || v != tt.want {
				t.Errorf("got %v (const=%v), want %d", tt.e, ok, tt.want)
			}
		})
	}
}

func TestIdentities(t *testing.T) {
	x := Sym(0)
	tests := []struct {
		name string
		e    *Expr
		want *Expr
	}{
		{"x+0", Bin(OpAdd, x, Const(0)), x},
		{"0+x", Bin(OpAdd, Const(0), x), x},
		{"x-0", Bin(OpSub, x, Const(0)), x},
		{"x*1", Bin(OpMul, x, Const(1)), x},
		{"x*0", Bin(OpMul, x, Const(0)), Zero},
		{"x&0", Bin(OpAnd, x, Const(0)), Zero},
		{"x&~0", Bin(OpAnd, x, Const(^uint64(0))), x},
		{"x|0", Bin(OpOr, x, Const(0)), x},
		{"x^0", Bin(OpXor, x, Const(0)), x},
		{"x^x", Bin(OpXor, x, x), Zero},
		{"x-x", Bin(OpSub, x, x), Zero},
		{"x==x", Bin(OpEq, x, x), One},
		{"x!=x", Bin(OpNe, x, x), Zero},
		{"x<x", Bin(OpLt, x, x), Zero},
		{"x<=x", Bin(OpLe, x, x), One},
		{"x&x", Bin(OpAnd, x, x), x},
		{"x|x", Bin(OpOr, x, x), x},
		{"x<<0", Bin(OpShl, x, Const(0)), x},
		{"x/1", Bin(OpDiv, x, Const(1)), x},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !tt.e.Equal(tt.want) {
				t.Errorf("got %v, want %v", tt.e, tt.want)
			}
		})
	}
}

func TestReassociation(t *testing.T) {
	x := Sym(1)
	e := Bin(OpAdd, Bin(OpAdd, x, Const(3)), Const(4))
	want := Bin(OpAdd, x, Const(7))
	if !e.Equal(want) {
		t.Errorf("got %v, want %v", e, want)
	}
}

func TestByteRangeFolding(t *testing.T) {
	x := Sym(0)
	if e := Bin(OpEq, x, Const(300)); !e.Equal(Zero) {
		t.Errorf("sym == 300 should fold to 0, got %v", e)
	}
	if e := Bin(OpNe, x, Const(300)); !e.Equal(One) {
		t.Errorf("sym != 300 should fold to 1, got %v", e)
	}
	if e := Bin(OpLt, x, Const(256)); !e.Equal(One) {
		t.Errorf("sym < 256 should fold to 1, got %v", e)
	}
	if e := Bin(OpLe, x, Const(255)); !e.Equal(One) {
		t.Errorf("sym <= 255 should fold to 1, got %v", e)
	}
	// But within range, no fold.
	if _, ok := Bin(OpEq, x, Const(200)).IsConst(); ok {
		t.Error("sym == 200 must stay symbolic")
	}
}

func TestNot(t *testing.T) {
	x, y := Sym(0), Sym(1)
	tests := []struct {
		e, want *Expr
	}{
		{Not(Bin(OpEq, x, y)), Bin(OpNe, x, y)},
		{Not(Bin(OpNe, x, y)), Bin(OpEq, x, y)},
		{Not(Bin(OpLt, x, y)), Bin(OpLe, y, x)},
		{Not(Bin(OpLe, x, y)), Bin(OpLt, y, x)},
		{Not(Bin(OpSLt, x, y)), Bin(OpSLe, y, x)},
		{Not(Const(0)), One},
		{Not(Const(7)), Zero},
		{Not(Bin(OpAdd, x, y)), Bin(OpEq, Bin(OpAdd, x, y), Zero)},
	}
	for _, tt := range tests {
		if !tt.e.Equal(tt.want) {
			t.Errorf("Not: got %v, want %v", tt.e, tt.want)
		}
	}
}

func TestBool(t *testing.T) {
	x := Sym(0)
	if e := Bool(Bin(OpEq, x, Const(3))); e.Op != OpEq {
		t.Errorf("Bool of comparison must be identity, got %v", e)
	}
	if e := Bool(x); e.Op != OpNe {
		t.Errorf("Bool of word must be !=0, got %v", e)
	}
	if e := Bool(Const(9)); !e.Equal(One) {
		t.Errorf("Bool(9) = %v, want 1", e)
	}
}

func TestEvalPartial(t *testing.T) {
	e := Bin(OpAdd, Sym(0), Sym(1))
	_, ok := e.Eval(func(sym int) (uint64, bool) {
		if sym == 0 {
			return 7, true
		}
		return 0, false
	})
	if ok {
		t.Error("partial assignment must not evaluate")
	}
	v, ok := e.Eval(func(sym int) (uint64, bool) { return uint64(sym + 1), true })
	if !ok || v != 3 {
		t.Errorf("Eval = %d,%v want 3,true", v, ok)
	}
}

func TestEvalConcreteOutOfRange(t *testing.T) {
	e := Bin(OpAdd, Sym(0), Sym(99))
	if v := e.EvalConcrete([]byte{5}); v != 5 {
		t.Errorf("out-of-range symbol must read 0; got %d", v)
	}
}

func TestSyms(t *testing.T) {
	e := Bin(OpAdd, Bin(OpMul, Sym(3), Sym(1)), Sym(3))
	got := e.Syms()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("Syms() = %v, want [1 3]", got)
	}
	// Cached result must be stable.
	if &e.Syms()[0] != &got[0] {
		t.Error("Syms() not cached")
	}
	if n := Const(5).Syms(); len(n) != 0 {
		t.Errorf("const Syms() = %v, want empty", n)
	}
}

func TestSizeAndString(t *testing.T) {
	e := Bin(OpAdd, Sym(0), Const(3))
	if e.Size() != 3 {
		t.Errorf("Size() = %d, want 3", e.Size())
	}
	if s := e.String(); s != "(in[0] + 0x3)" {
		t.Errorf("String() = %q", s)
	}
}

// randExpr builds a random expression over nsyms symbols with given depth.
func randExpr(r *rand.Rand, depth, nsyms int) *Expr {
	if depth == 0 || r.Intn(4) == 0 {
		if r.Intn(2) == 0 {
			return Sym(r.Intn(nsyms))
		}
		return Const(uint64(r.Intn(512)))
	}
	ops := []Op{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr, OpEq, OpNe, OpLt, OpLe, OpSLt, OpSLe}
	op := ops[r.Intn(len(ops))]
	return Bin(op, randExpr(r, depth-1, nsyms), randExpr(r, depth-1, nsyms))
}

// TestSimplifierSoundness: simplified construction must agree with direct
// unsimplified evaluation for random inputs.
func TestSimplifierSoundness(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nsyms := 1 + r.Intn(4)
		// Build the same random structure twice: once through the
		// simplifying constructors, once as a raw tree.
		var rawBuild func(depth int) (*Expr, *Expr)
		rawBuild = func(depth int) (simplified, raw *Expr) {
			if depth == 0 || r.Intn(4) == 0 {
				if r.Intn(2) == 0 {
					s := r.Intn(nsyms)
					return Sym(s), Sym(s)
				}
				c := uint64(r.Intn(512))
				return Const(c), Const(c)
			}
			ops := []Op{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr, OpEq, OpNe, OpLt, OpLe}
			op := ops[r.Intn(len(ops))]
			sx, rx := rawBuild(depth - 1)
			sy, ry := rawBuild(depth - 1)
			return Bin(op, sx, sy), &Expr{Op: op, X: rx, Y: ry}
		}
		simplified, raw := rawBuild(4)
		input := make([]byte, nsyms)
		for i := range input {
			input[i] = byte(r.Intn(256))
		}
		return simplified.EvalConcrete(input) == raw.EvalConcrete(input)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestNotSoundness: Not(e) must evaluate to the boolean negation of e.
func TestNotSoundness(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randExpr(r, 3, 3)
		n := Not(e)
		input := []byte{byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))}
		ev := e.EvalConcrete(input)
		nv := n.EvalConcrete(input)
		return (ev == 0) == (nv == 1) && (nv == 0 || nv == 1)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
