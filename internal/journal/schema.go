package journal

import "sort"

// Type names one journal event class. Every Type emitted anywhere in the
// tree must be declared in the registry below; the journaldoc analyzer in
// cmd/octolint enforces both directions of that contract.
type Type string

// Event types, grouped by pipeline stage. The registry entry for each
// classifies it as deterministic (fixed order and payload for a given
// pair/config, independent of symex worker count) or not, and by the
// verbosity level that retains it.
const (
	// EvJobStart opens every journal: the pair under verification.
	EvJobStart Type = "job.start"
	// EvJobError closes a journal whose verification returned an error.
	EvJobError Type = "job.error"

	// EvCacheProbe records one artifact-cache lookup: phase, key, hit.
	EvCacheProbe Type = "cache.probe"

	// EvP1Done summarizes phase P1: crash primitives and bunches extracted
	// from (S, poc).
	EvP1Done Type = "p1.done"

	// EvStaticDone summarizes the pre-P2 static analysis of T.
	EvStaticDone Type = "static.done"
	// EvStaticProof records one function's dominator-proved dead regions.
	EvStaticProof Type = "static.proof"
	// EvStaticShortCircuit records a statically-unreachable verdict proof.
	EvStaticShortCircuit Type = "static.short_circuit"

	// EvFaultDegraded records an injected degradable fault the pipeline
	// absorbed by falling back (cache or static analysis disabled).
	EvFaultDegraded Type = "fault.degraded"
	// EvFaultTransient records an injected transient fault in a phase.
	EvFaultTransient Type = "fault.transient"
	// EvFaultRetry records the retry that followed a transient fault.
	EvFaultRetry Type = "fault.retry"

	// EvP2Done summarizes P2 preparation: CFG and distance maps for ep.
	EvP2Done Type = "p2.done"

	// EvSymexStart opens the directed symbolic execution toward ep.
	EvSymexStart Type = "symex.start"
	// EvSymexFork records one frontier emission (worker-attributed).
	EvSymexFork Type = "symex.fork"
	// EvSymexPrune records a frontier node discarded before execution.
	EvSymexPrune Type = "symex.prune"
	// EvSymexCommit records a worker committing a reached/terminal state.
	EvSymexCommit Type = "symex.commit"
	// EvSymexAbsint records a branch discharged by the abstract-
	// interpretation oracle before the solver saw it.
	EvSymexAbsint Type = "symex.absint_discharged"
	// EvSymexDone records the committed outcome: kind, path, why.
	EvSymexDone Type = "symex.done"
	// EvSymexStats carries the schedule-dependent exploration counters.
	EvSymexStats Type = "symex.stats"

	// EvSolverSatCache records one SAT-memo lookup (worker-attributed).
	EvSolverSatCache Type = "solver.sat_cache"
	// EvSolverComplement records a complement-pair UNSAT short-circuit.
	EvSolverComplement Type = "solver.complement"
	// EvSolverSolve records the final model solve over the reformed
	// constraint set.
	EvSolverSolve Type = "solver.solve"

	// EvHybridStart opens a directed-fuzzing fallback campaign.
	EvHybridStart Type = "hybrid.start"
	// EvHybridDone records the campaign outcome: rescued, execs, arm.
	EvHybridDone Type = "hybrid.done"
	// EvHybridConfirm records the concrete-VM replay gate on a cached
	// campaign outcome.
	EvHybridConfirm Type = "hybrid.confirm"

	// EvP4Verify records the concrete execution of poc' against T.
	EvP4Verify Type = "p4.verify"
	// EvP4Minimize records the poc' minimization outcome.
	EvP4Minimize Type = "p4.minimize"
	// EvP4Classify records the Type-I/Type-II classification evidence.
	EvP4Classify Type = "p4.classify"

	// EvVerdict closes every successful journal: the verdict plus the
	// evidence links.
	EvVerdict Type = "verdict"
)

// Spec describes one event type's schema entry.
type Spec struct {
	// Det marks types whose order and payload are deterministic for a
	// given pair and configuration — emitted from the job goroutine, never
	// carrying worker- or schedule-dependent data. The default explain
	// rendering includes exactly these.
	Det bool
	// Verb is the minimum verbosity that retains the type.
	Verb Verbosity
	// Phase groups the type for rendering.
	Phase string
	// Doc is a one-line description.
	Doc string
}

// registry declares every event type. journaldoc checks that the Ev*
// constants above and the keys here coincide exactly, and that no other
// package emits a type not declared here.
var registry = map[Type]Spec{
	EvJobStart:           {Det: true, Verb: VerbSummary, Phase: "job", Doc: "pair under verification"},
	EvJobError:           {Det: true, Verb: VerbSummary, Phase: "job", Doc: "verification returned an error"},
	EvCacheProbe:         {Det: true, Verb: VerbSummary, Phase: "cache", Doc: "artifact-cache lookup"},
	EvP1Done:             {Det: true, Verb: VerbSummary, Phase: "p1", Doc: "crash primitives and bunches extracted"},
	EvStaticDone:         {Det: true, Verb: VerbSummary, Phase: "static", Doc: "static pre-analysis summary"},
	EvStaticProof:        {Det: true, Verb: VerbSummary, Phase: "static", Doc: "dominator-proved dead regions"},
	EvStaticShortCircuit: {Det: true, Verb: VerbSummary, Phase: "static", Doc: "statically-unreachable proof"},
	EvFaultDegraded:      {Det: true, Verb: VerbSummary, Phase: "fault", Doc: "degradable fault absorbed by fallback"},
	EvFaultTransient:     {Det: true, Verb: VerbSummary, Phase: "fault", Doc: "transient fault injected"},
	EvFaultRetry:         {Det: true, Verb: VerbSummary, Phase: "fault", Doc: "phase retried after transient fault"},
	EvP2Done:             {Det: true, Verb: VerbSummary, Phase: "p2", Doc: "CFG and distance preparation"},
	EvSymexStart:         {Det: true, Verb: VerbSummary, Phase: "symex", Doc: "directed exploration started"},
	EvSymexFork:          {Det: false, Verb: VerbVerbose, Phase: "symex", Doc: "frontier emission"},
	EvSymexPrune:         {Det: false, Verb: VerbVerbose, Phase: "symex", Doc: "frontier node discarded"},
	EvSymexCommit:        {Det: false, Verb: VerbVerbose, Phase: "symex", Doc: "worker committed a state"},
	EvSymexAbsint:        {Det: false, Verb: VerbVerbose, Phase: "symex", Doc: "branch discharged by the absint oracle"},
	EvSymexDone:          {Det: true, Verb: VerbSummary, Phase: "symex", Doc: "committed exploration outcome"},
	EvSymexStats:         {Det: false, Verb: VerbSummary, Phase: "symex", Doc: "schedule-dependent exploration counters"},
	EvSolverSatCache:     {Det: false, Verb: VerbVerbose, Phase: "solver", Doc: "SAT-memo lookup"},
	EvSolverComplement:   {Det: false, Verb: VerbVerbose, Phase: "solver", Doc: "complement-pair UNSAT short-circuit"},
	EvSolverSolve:        {Det: true, Verb: VerbSummary, Phase: "solver", Doc: "final model solve"},
	EvHybridStart:        {Det: true, Verb: VerbSummary, Phase: "hybrid", Doc: "fallback campaign started"},
	EvHybridDone:         {Det: true, Verb: VerbSummary, Phase: "hybrid", Doc: "fallback campaign outcome"},
	EvHybridConfirm:      {Det: true, Verb: VerbSummary, Phase: "hybrid", Doc: "replay gate on a cached campaign outcome"},
	EvP4Verify:           {Det: true, Verb: VerbSummary, Phase: "p4", Doc: "concrete execution of poc'"},
	EvP4Minimize:         {Det: true, Verb: VerbSummary, Phase: "p4", Doc: "poc' minimization"},
	EvP4Classify:         {Det: true, Verb: VerbSummary, Phase: "p4", Doc: "Type-I/Type-II classification"},
	EvVerdict:            {Det: true, Verb: VerbSummary, Phase: "verdict", Doc: "final verdict and evidence links"},
}

// SpecOf returns the schema entry for t.
func SpecOf(t Type) (Spec, bool) {
	s, ok := registry[t]
	return s, ok
}

// Types returns every declared event type, sorted.
func Types() []Type {
	out := make([]Type, 0, len(registry))
	for t := range registry {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
