package journal

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
)

// EncodeJSONL writes events as JSON Lines: one JSON object per event,
// newline-terminated. The format is the journal's persistence and wire
// shape — append-friendly, greppable, and decodable line by line.
func EncodeJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			return fmt.Errorf("journal: encode seq %d: %w", ev.Seq, err)
		}
		bw.Write(b)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// MarshalJSONL renders events to a JSONL byte slice.
func MarshalJSONL(events []Event) ([]byte, error) {
	var buf bytes.Buffer
	if err := EncodeJSONL(&buf, events); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeJSONL parses a JSONL journal. Blank lines are skipped; a
// malformed line is an error naming its 1-based line number. The decoder
// never panics on arbitrary input (FuzzJournalDecode holds it to that).
func DecodeJSONL(data []byte) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("journal: line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("journal: scan: %w", err)
	}
	return events, nil
}

// Key returns the content-addressed artifact-store key for an encoded
// journal: "jr:" + SHA-256 of the JSONL bytes.
func Key(data []byte) string {
	sum := sha256.Sum256(data)
	return fmt.Sprintf("jr:%x", sum)
}
