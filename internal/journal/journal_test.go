package journal

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestEmitAndEvents(t *testing.T) {
	r := New("job-1", Options{})
	if got := r.ID(); got != "job-1" {
		t.Fatalf("ID = %q", got)
	}
	s1 := r.Emit(EvJobStart, Attrs{"pair": "demo"})
	s2 := r.Emit(EvP1Done, Attrs{"bunches": 3})
	if s1 != 1 || s2 != 2 {
		t.Fatalf("seqs = %d, %d", s1, s2)
	}
	evs := r.Events()
	if len(evs) != 2 || evs[0].Type != EvJobStart || evs[1].Type != EvP1Done {
		t.Fatalf("events = %+v", evs)
	}
	if !evs[0].Det {
		t.Fatalf("job.start should be classified deterministic")
	}
	if got := r.EventsAfter(1); len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("EventsAfter(1) = %+v", got)
	}
	if got := r.EventsAfter(2); got != nil {
		t.Fatalf("EventsAfter(2) = %+v", got)
	}
}

func TestNilRecorderNoops(t *testing.T) {
	var r *Recorder
	if r.Emit(EvJobStart, nil) != 0 || r.EmitFinal(EvVerdict, nil) != 0 {
		t.Fatalf("nil recorder must return seq 0")
	}
	if r.Verbose() || r.Len() != 0 || r.Dropped() != 0 || r.Events() != nil || r.ID() != "" || r.Closed() {
		t.Fatalf("nil recorder leaked state")
	}
	select {
	case <-r.Updated():
	default:
		t.Fatalf("nil recorder Updated must be closed")
	}
	r.Close() // must not panic
}

func TestVerbosityFilter(t *testing.T) {
	r := New("j", Options{})
	if r.Verbose() {
		t.Fatalf("summary recorder reports Verbose")
	}
	if seq := r.Emit(EvSymexFork, Attrs{"worker": 1}); seq != 0 {
		t.Fatalf("verbose event retained at summary verbosity (seq %d)", seq)
	}
	if r.Len() != 0 {
		t.Fatalf("len = %d", r.Len())
	}
	v := New("j", Options{Verbosity: VerbVerbose})
	if !v.Verbose() {
		t.Fatalf("verbose recorder reports !Verbose")
	}
	if seq := v.Emit(EvSymexFork, Attrs{"worker": 1}); seq == 0 {
		t.Fatalf("verbose event dropped at verbose verbosity")
	}
}

func TestCapacityDropsNewestKeepsFinal(t *testing.T) {
	r := New("j", Options{Capacity: 3})
	for i := 0; i < 10; i++ {
		r.Emit(EvP1Done, Attrs{"i": i})
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	if r.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", r.Dropped())
	}
	// The causal prefix survives: the first three events.
	for i, ev := range r.Events() {
		if got := ev.Attrs["i"].(int); got != i {
			t.Fatalf("event %d has i=%d", i, got)
		}
	}
	// The final event bypasses the bound and links the retained evidence.
	seq := r.EmitFinal(EvVerdict, Attrs{"verdict": "triggered"})
	if seq != 11 {
		t.Fatalf("final seq = %d, want 11 (drops consume seqs)", seq)
	}
	evs := r.Events()
	last := evs[len(evs)-1]
	if last.Type != EvVerdict {
		t.Fatalf("final not retained: %+v", last)
	}
	ev, ok := last.Attrs["evidence"].([]uint64)
	if !ok || len(ev) != 3 || ev[0] != 1 || ev[2] != 3 {
		t.Fatalf("evidence = %#v", last.Attrs["evidence"])
	}
}

func TestUnboundedCapacity(t *testing.T) {
	r := New("j", Options{Capacity: -1})
	for i := 0; i < 2*DefaultCapacity; i++ {
		r.Emit(EvP1Done, nil)
	}
	if r.Len() != 2*DefaultCapacity || r.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d", r.Len(), r.Dropped())
	}
}

func TestCloseStopsEmission(t *testing.T) {
	r := New("j", Options{})
	r.Emit(EvJobStart, nil)
	r.Close()
	if !r.Closed() {
		t.Fatalf("not closed")
	}
	if r.Emit(EvP1Done, nil) != 0 || r.EmitFinal(EvVerdict, nil) != 0 {
		t.Fatalf("emission after Close recorded")
	}
	if r.Len() != 1 {
		t.Fatalf("len = %d", r.Len())
	}
	select {
	case <-r.Updated():
	default:
		t.Fatalf("Updated on closed recorder must be closed")
	}
}

func TestUpdatedWakesOnAppendAndClose(t *testing.T) {
	r := New("j", Options{})
	ch := r.Updated()
	select {
	case <-ch:
		t.Fatalf("premature wakeup")
	default:
	}
	r.Emit(EvJobStart, nil)
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatalf("no wakeup on append")
	}
	ch = r.Updated()
	r.Close()
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatalf("no wakeup on close")
	}
}

// TestConcurrentEmission hammers one Recorder from many goroutines under
// -race: seqs must stay unique and monotonic, and the final event must
// land exactly once with a consistent evidence set.
func TestConcurrentEmission(t *testing.T) {
	r := New("j", Options{Capacity: -1, Verbosity: VerbVerbose})
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Emit(EvSymexFork, Attrs{"worker": w, "i": i})
				if i%10 == 0 {
					ch := r.Updated()
					_ = r.EventsAfter(uint64(i))
					select {
					case <-ch:
					default:
					}
				}
			}
		}(w)
	}
	wg.Wait()
	r.EmitFinal(EvVerdict, Attrs{"verdict": "triggered"})
	r.Close()
	evs := r.Events()
	if len(evs) != workers*per+1 {
		t.Fatalf("len = %d", len(evs))
	}
	var prev uint64
	for _, ev := range evs {
		if ev.Seq <= prev {
			t.Fatalf("seq %d not increasing after %d", ev.Seq, prev)
		}
		prev = ev.Seq
	}
}

func TestRegistryCoversTypes(t *testing.T) {
	for _, typ := range Types() {
		spec, ok := SpecOf(typ)
		if !ok {
			t.Fatalf("SpecOf(%s) missing", typ)
		}
		if spec.Phase == "" || spec.Doc == "" {
			t.Fatalf("%s: incomplete spec %+v", typ, spec)
		}
	}
	if _, ok := SpecOf(Type("no.such")); ok {
		t.Fatalf("unknown type resolved")
	}
}

func TestEncodeDecodeRenderRoundTrip(t *testing.T) {
	r := New("j", Options{})
	r.Emit(EvJobStart, Attrs{"pair": "demo"})
	r.Emit(EvP1Done, Attrs{"bunches": 3, "cached": false})
	r.Emit(EvSymexDone, Attrs{"kind": "crashed", "path": "0.1.0", "steps": uint64(42)})
	r.Emit(EvSymexStats, Attrs{"forks": 9})
	r.EmitFinal(EvVerdict, Attrs{"verdict": "triggered", "type": "Type-I", "reason": ""})
	live := Render(r.Events(), RenderOptions{})

	data, err := MarshalJSONL(r.Events())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	decoded, err := DecodeJSONL(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got := Render(decoded, RenderOptions{}); got != live {
		t.Fatalf("decoded rendering differs:\nlive:\n%s\ndecoded:\n%s", live, got)
	}
	// The nondeterministic stats event is excluded from the default
	// rendering but present under All.
	if gotAll := Render(decoded, RenderOptions{All: true}); gotAll == live {
		t.Fatalf("All rendering should include symex.stats")
	}
	if want := "verdict: triggered (Type-I)\n"; !endsWith(live, want) {
		t.Fatalf("rendering does not close with verdict line:\n%s", live)
	}
}

func TestRenderError(t *testing.T) {
	r := New("j", Options{})
	r.Emit(EvJobStart, Attrs{"pair": "demo"})
	r.EmitFinal(EvJobError, Attrs{"err": "boom"})
	out := Render(r.Events(), RenderOptions{})
	if !endsWith(out, "error: boom\n") {
		t.Fatalf("rendering = %q", out)
	}
}

func TestKeyIsContentAddressed(t *testing.T) {
	a := Key([]byte("x"))
	b := Key([]byte("x"))
	c := Key([]byte("y"))
	if a != b || a == c {
		t.Fatalf("keys: %s %s %s", a, b, c)
	}
	if len(a) != len("jr:")+64 || a[:3] != "jr:" {
		t.Fatalf("key shape: %s", a)
	}
}

func TestDecodeJSONLTolerant(t *testing.T) {
	evs, err := DecodeJSONL([]byte("\n\n{\"seq\":1,\"type\":\"p1.done\"}\n\n"))
	if err != nil || len(evs) != 1 || evs[0].Type != EvP1Done {
		t.Fatalf("evs=%+v err=%v", evs, err)
	}
	if _, err := DecodeJSONL([]byte("{not json}")); err == nil {
		t.Fatalf("malformed line accepted")
	}
}

func endsWith(s, suffix string) bool {
	return len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix
}

func BenchmarkEmit(b *testing.B) {
	r := New("j", Options{Capacity: -1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(EvP1Done, Attrs{"i": i})
	}
}

func BenchmarkEmitNil(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(EvP1Done, nil)
	}
}

func ExampleRender() {
	r := New("job-1", Options{})
	r.Emit(EvJobStart, Attrs{"pair": "demo"})
	r.Emit(EvP1Done, Attrs{"bunches": 2})
	r.EmitFinal(EvVerdict, Attrs{"verdict": "triggered", "type": "Type-I"})
	fmt.Print(Render(r.Events(), RenderOptions{}))
	// Output:
	// job:
	//   job.start              pair=demo
	// p1:
	//   p1.done                bunches=2
	// verdict: triggered (Type-I)
}
