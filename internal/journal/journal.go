// Package journal records the causal chain behind every verification
// verdict: a bounded, append-only event log that explains *why* the
// pipeline concluded what it did. Every phase contributes its decisions
// with their inputs — P1 cache probes and bunch extraction, the static
// pre-analysis's dominator-proved dead regions and short-circuits (pre-P2),
// the directed symbolic execution of P2/P3 (fork/prune/commit traffic at
// verbose level, the committed path and stats always), solver SAT-memo
// hits and complement short-circuits, fault injections with their
// retries, the concrete P4 verify/minimize/classify steps, and a final
// verdict record that links the verdict to the events that produced it.
//
// The journal is observability, not control flow: a nil *Recorder is a
// valid no-op sink (the same discipline as telemetry counters), so engine
// code emits unconditionally and pays one nil check when journaling is
// off. Event types are classified by a static schema (schema.go) into
// deterministic ones — emitted in a fixed order from the job's own
// goroutine, so the default `explain` rendering is byte-identical for any
// symex worker count — and nondeterministic ones (worker-attributed
// frontier traffic, schedule-dependent stats), which only appear under
// verbose rendering.
//
// Concurrency: a Recorder is safe for concurrent use by any number of
// emitting goroutines (symex frontier workers, solver calls) and readers;
// all state is guarded by one mutex. Updated returns a channel that is
// closed on the next append or Close, giving streaming readers a
// wakeup-free poll loop. The capacity bound drops the newest non-final
// events when full (the causal prefix is the valuable part), counting
// drops; EmitFinal always lands.
package journal

import (
	"context"
	"sync"
	"time"
)

// DefaultCapacity bounds a Recorder's retained events when Options.Capacity
// is zero. At the default verbosity a full 17-pair corpus run emits well
// under a hundred events per job; the headroom is for verbose mode.
const DefaultCapacity = 8192

// Verbosity selects how much frontier/solver traffic a Recorder retains.
type Verbosity int

// Verbosity levels.
const (
	// VerbSummary records phase decisions and outcomes only: every
	// deterministic event plus schedule-dependent summaries (symex.stats).
	VerbSummary Verbosity = iota
	// VerbVerbose additionally records per-state frontier traffic
	// (fork/prune/commit) and per-call solver cache events.
	VerbVerbose
)

// Attrs carries an event's key/value payload. Values must be
// JSON-marshalable; keep them to strings, numbers, bools and small
// slices so events stay cheap to encode.
type Attrs = map[string]any

// Event is one journal entry. Seq is unique and strictly increasing per
// Recorder (dropped events consume seqs too, so gaps witness drops).
// TUS is the wall-clock unix-microsecond stamp; renderings omit it so
// replays compare byte-identical. Det mirrors the schema's classification
// at emission time, making persisted journals self-describing.
type Event struct {
	Seq   uint64 `json:"seq"`
	TUS   int64  `json:"tus"`
	Type  Type   `json:"type"`
	Det   bool   `json:"det"`
	Attrs Attrs  `json:"attrs,omitempty"`
}

// Options configures a Recorder.
type Options struct {
	// Capacity bounds retained events; 0 means DefaultCapacity,
	// negative means unbounded.
	Capacity int
	// Verbosity selects the retained event classes.
	Verbosity Verbosity
}

// Recorder is a bounded, append-only event journal for one job. The zero
// value is not useful; use New. A nil Recorder is a valid no-op sink.
type Recorder struct {
	id  string
	cap int
	vrb Verbosity

	mu      sync.Mutex
	events  []Event
	seq     uint64
	dropped uint64
	closed  bool
	// notify is lazily allocated on the first Updated call and closed
	// (then cleared) on the next append or Close, so jobs nobody watches
	// never allocate a channel.
	notify chan struct{}
}

// New returns a Recorder for the given job id.
func New(id string, o Options) *Recorder {
	c := o.Capacity
	if c == 0 {
		c = DefaultCapacity
	}
	return &Recorder{id: id, cap: c, vrb: o.Verbosity}
}

// ID returns the job id the Recorder was created with ("" on nil).
func (r *Recorder) ID() string {
	if r == nil {
		return ""
	}
	return r.id
}

// Verbose reports whether verbose-class events would be retained. Hot
// paths use it to skip building attribute maps that would be discarded.
func (r *Recorder) Verbose() bool {
	return r != nil && r.vrb >= VerbVerbose
}

// Emit appends one event and returns its seq (0 when nothing was
// recorded: nil or closed Recorder, or a verbose-class event at summary
// verbosity). When the capacity bound is hit the event is dropped —
// newest-out, keeping the causal prefix — but still consumes a seq and
// increments the dropped counter.
func (r *Recorder) Emit(t Type, attrs Attrs) uint64 {
	if r == nil {
		return 0
	}
	spec, ok := registry[t]
	if ok && spec.Verb > r.vrb {
		return 0
	}
	return r.append(t, spec.Det, attrs, false)
}

// EmitFinal appends the job's terminal event (verdict or job error). It
// bypasses both the verbosity filter and the capacity bound, and
// auto-attaches an "evidence" attribute: the seqs of every deterministic
// event retained so far, linking the verdict to its causal chain.
func (r *Recorder) EmitFinal(t Type, attrs Attrs) uint64 {
	if r == nil {
		return 0
	}
	det := registry[t].Det
	if attrs == nil {
		attrs = Attrs{}
	}
	return r.append(t, det, attrs, true)
}

func (r *Recorder) append(t Type, det bool, attrs Attrs, final bool) uint64 {
	now := time.Now().UnixMicro()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0
	}
	r.seq++
	if final {
		evidence := make([]uint64, 0, len(r.events))
		for _, ev := range r.events {
			if ev.Det {
				evidence = append(evidence, ev.Seq)
			}
		}
		attrs["evidence"] = evidence
	} else if r.cap >= 0 && len(r.events) >= r.cap {
		r.dropped++
		return r.seq
	}
	r.events = append(r.events, Event{Seq: r.seq, TUS: now, Type: t, Det: det, Attrs: attrs})
	r.wake()
	return r.seq
}

// wake closes and clears the notify channel; callers hold r.mu.
func (r *Recorder) wake() {
	if r.notify != nil {
		close(r.notify)
		r.notify = nil
	}
}

// Events returns a copy of the retained events in emission order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// EventsAfter returns a copy of the retained events with Seq > after;
// with after == 0 it is Events. The cursor for the next page is the Seq
// of the last returned event.
func (r *Recorder) EventsAfter(after uint64) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	i := 0
	for i < len(r.events) && r.events[i].Seq <= after {
		i++
	}
	if i == len(r.events) {
		return nil
	}
	return append([]Event(nil), r.events[i:]...)
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Dropped returns how many events the capacity bound discarded.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Updated returns a channel closed on the next append or Close. On a nil
// or already-closed Recorder it returns an already-closed channel. Take
// the channel *before* reading events to avoid missing a wakeup.
func (r *Recorder) Updated() <-chan struct{} {
	if r == nil {
		return closedCh
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return closedCh
	}
	if r.notify == nil {
		r.notify = make(chan struct{})
	}
	return r.notify
}

var closedCh = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Close marks the journal complete; later Emits are ignored and pending
// Updated channels fire so streaming readers observe the end.
func (r *Recorder) Close() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	r.wake()
}

// Closed reports whether Close was called.
func (r *Recorder) Closed() bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// ctxKey carries a Recorder through a context.
type ctxKey struct{}

// With returns a context carrying rec; engine phases retrieve it with
// FromContext. Carrying nil is allowed and yields the no-op Recorder.
func With(ctx context.Context, rec *Recorder) context.Context {
	return context.WithValue(ctx, ctxKey{}, rec)
}

// FromContext returns the Recorder carried by ctx, or nil (the no-op
// sink) when none is registered.
func FromContext(ctx context.Context) *Recorder {
	rec, _ := ctx.Value(ctxKey{}).(*Recorder)
	return rec
}
