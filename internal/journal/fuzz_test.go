package journal

import "testing"

// FuzzJournalDecode holds DecodeJSONL to its contract: arbitrary input
// never panics, and anything it accepts survives a re-encode/decode
// round trip with the same rendering.
func FuzzJournalDecode(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("\n\n"))
	f.Add([]byte(`{"seq":1,"tus":2,"type":"job.start","det":true,"attrs":{"pair":"demo"}}` + "\n"))
	f.Add([]byte(`{"seq":1,"type":"verdict","det":true,"attrs":{"verdict":"triggered","type":"Type-I","evidence":[1,2]}}` + "\n"))
	f.Add([]byte(`{"seq":9007199254740993,"type":"symex.stats","attrs":{"forks":1.5,"deep":[{"a":null}]}}` + "\n"))
	f.Add([]byte(`{"seq":1,"type":"no.such.type","attrs":{"x":true}}` + "\n"))
	f.Add([]byte("{not json}\n"))
	f.Add([]byte(`{"seq":"one"}` + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := DecodeJSONL(data)
		if err != nil {
			return
		}
		// Accepted journals must re-encode and render without panicking,
		// and the re-decoded copy must render identically.
		out, err := MarshalJSONL(evs)
		if err != nil {
			t.Fatalf("re-encode of accepted journal failed: %v", err)
		}
		again, err := DecodeJSONL(out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if Render(again, RenderOptions{All: true}) != Render(evs, RenderOptions{All: true}) {
			t.Fatalf("rendering not stable across round trip")
		}
	})
}
