package journal

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// RenderOptions configures Render.
type RenderOptions struct {
	// All includes nondeterministic and verbose-class events. The default
	// (false) renders only deterministic events, which makes the output
	// byte-identical across symex worker counts for the same pair and
	// configuration.
	All bool
}

// Render formats a journal as an indented human-readable narrative:
// events grouped under phase headers, attributes sorted by key, with the
// terminal verdict (or error) on an unindented closing line. Timestamps,
// seqs and evidence links are never rendered, so a journal decoded from
// its JSONL artifact renders byte-identically to the live Recorder's.
func Render(events []Event, o RenderOptions) string {
	var b strings.Builder
	phase := ""
	for _, ev := range events {
		spec, known := registry[ev.Type]
		if !o.All && !(known && spec.Det) {
			continue
		}
		switch ev.Type {
		case EvVerdict:
			renderVerdict(&b, ev)
			continue
		case EvJobError:
			fmt.Fprintf(&b, "error: %s\n", str(ev.Attrs, "err"))
			continue
		}
		p := spec.Phase
		if !known {
			p = "unknown"
		}
		if p != phase {
			phase = p
			fmt.Fprintf(&b, "%s:\n", p)
		}
		line := fmt.Sprintf("  %-22s%s", string(ev.Type), attrString(ev.Attrs))
		b.WriteString(strings.TrimRight(line, " "))
		b.WriteByte('\n')
	}
	return b.String()
}

// renderVerdict writes the closing line: "verdict: triggered (Type-I)"
// with the reason appended when one was recorded.
func renderVerdict(b *strings.Builder, ev Event) {
	fmt.Fprintf(b, "verdict: %s (%s)", str(ev.Attrs, "verdict"), str(ev.Attrs, "type"))
	if r := str(ev.Attrs, "reason"); r != "" {
		fmt.Fprintf(b, " — %s", r)
	}
	b.WriteByte('\n')
}

// attrString renders attributes sorted by key as " k=v k=v". The
// "evidence" attribute (seq links) is never rendered.
func attrString(attrs Attrs) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		if k == "evidence" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(" ")
		b.WriteString(k)
		b.WriteString("=")
		b.WriteString(fmtVal(attrs[k]))
	}
	return b.String()
}

// fmtVal formats one attribute value so live and JSONL-decoded journals
// render identically: integral float64s (the shape json.Unmarshal gives
// every number) print as integers, and composites go through
// json.Marshal, which normalizes numeric types the same way.
func fmtVal(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case bool:
		return strconv.FormatBool(x)
	case float64:
		if x == float64(int64(x)) {
			return strconv.FormatInt(int64(x), 10)
		}
		return strconv.FormatFloat(x, 'g', -1, 64)
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case uint64:
		return strconv.FormatUint(x, 10)
	case uint32:
		return strconv.FormatUint(uint64(x), 10)
	default:
		b, err := json.Marshal(v)
		if err != nil {
			return fmt.Sprintf("%v", v)
		}
		return string(b)
	}
}

// str returns attrs[k] as a string ("" when absent or not a string).
func str(attrs Attrs, k string) string {
	s, _ := attrs[k].(string)
	return s
}
