package trace_test

import (
	"strings"
	"testing"

	"octopocs/internal/asm"
	"octopocs/internal/core"
	"octopocs/internal/corpus"
	"octopocs/internal/isa"
	"octopocs/internal/trace"
	"octopocs/internal/vm"
)

func TestRecordCapturesStructure(t *testing.T) {
	b := asm.NewBuilder("t")
	inner := b.Function("inner", 1)
	inner.Ret(inner.Param(0))
	outer := b.Function("outer", 0)
	outer.Ret(outer.Call("inner", outer.Const(7)))
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	buf := f.Sys(isa.SysAlloc, f.Const(4))
	f.Sys(isa.SysRead, fd, buf, f.Const(2))
	f.Call("outer")
	f.Exit(0)
	b.Entry("main")
	prog := b.MustBuild()

	tr := trace.Record(prog, vm.Config{Input: []byte{1, 2, 3}})
	calls := tr.Calls()
	want := []string{"main", "outer", "inner"}
	if len(calls) != len(want) {
		t.Fatalf("calls = %v, want %v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("calls = %v, want %v", calls, want)
		}
	}
	s := tr.String()
	if !strings.Contains(s, "read [0..2)") || !strings.Contains(s, "call inner[7]") {
		t.Errorf("rendering missing events:\n%s", s)
	}
}

func TestLibPathRestriction(t *testing.T) {
	b := asm.NewBuilder("t")
	helper := b.Function("helper", 0)
	helper.RetI(0)
	dec := b.Function("decode", 0) // ℓ member that calls a non-ℓ helper
	dec.Call("helper")
	dec.RetI(0)
	f := b.Function("main", 0)
	f.Call("helper") // outside ℓ: must not appear
	f.Call("decode")
	f.Exit(0)
	b.Entry("main")
	prog := b.MustBuild()

	tr := trace.Record(prog, vm.Config{})
	path := tr.LibPath(map[string]bool{"decode": true})
	want := []string{"decode", "helper"} // helper inside ℓ's extent counts
	if len(path) != len(want) || path[0] != want[0] || path[1] != want[1] {
		t.Fatalf("LibPath = %v, want %v", path, want)
	}
}

// TestFigure1Invariant is the paper's core claim, checked over every
// triggered corpus pair: the reformed PoC drives T along the same ℓ path
// that the original PoC drives in S.
func TestFigure1Invariant(t *testing.T) {
	pipeline := core.New(core.Config{})
	for _, spec := range corpus.All() {
		spec := spec
		t.Run(spec.Label(), func(t *testing.T) {
			rep, err := pipeline.Verify(spec.Pair)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Verdict != core.VerdictTriggered {
				t.Skip("only triggered pairs preserve the ℓ path")
			}
			sTrace := trace.Record(spec.Pair.S, vm.Config{Input: spec.Pair.PoC, MaxSteps: spec.Pair.MaxSteps})
			tTrace := trace.Record(spec.Pair.T, vm.Config{Input: rep.PoCPrime, MaxSteps: spec.Pair.MaxSteps})
			same, diff := trace.SamePath(sTrace, tTrace, spec.Pair.Lib)
			if !same {
				t.Errorf("ℓ paths diverge: %s\nS: %v\nT: %v",
					diff, sTrace.LibPath(spec.Pair.Lib), tTrace.LibPath(spec.Pair.Lib))
			}
		})
	}
}
