// Package trace records structured execution traces of MIR programs and
// compares them. Its centerpiece is the paper's Figure-1 invariant: when a
// reformed PoC verifies a propagated vulnerability, the execution path
// *inside* the shared code ℓ is the same as the original PoC's path in S —
// only the way in (the guiding input) differs. It backs the P4 verification
// explanations (octopocs -explain) and tests of the reform pipeline.
//
// Concurrency: Record runs a private VM and returns an immutable Trace;
// comparisons (SamePath) only read. Distinct recordings may run
// concurrently.
package trace

import (
	"fmt"
	"strings"

	"octopocs/internal/isa"
	"octopocs/internal/vm"
)

// Kind classifies trace events.
type Kind int

// Event kinds.
const (
	KindCall Kind = iota + 1
	KindRet
	KindRead
)

// Event is one recorded occurrence.
type Event struct {
	Kind Kind
	// Func is the callee (KindCall) or returning function (KindRet).
	Func string
	// Args are the call arguments (KindCall).
	Args []uint64
	// Depth is the call depth at the event.
	Depth int
	// FileOff and Count describe input consumption (KindRead).
	FileOff int64
	Count   int
}

// Trace is a recorded run.
type Trace struct {
	Events  []Event
	Outcome *vm.Outcome
}

// Record executes the program and captures calls, returns and input reads.
func Record(prog *isa.Program, cfg vm.Config) *Trace {
	tr := &Trace{}
	depth := 0
	base := cfg.Hooks
	hooks := vm.Hooks{}
	if base != nil {
		hooks = *base
	}
	hooks.OnCall = func(_ isa.Loc, callee string, args []uint64, _, _ uint64, _ isa.Reg) {
		tr.Events = append(tr.Events, Event{
			Kind: KindCall, Func: callee,
			Args: append([]uint64(nil), args...), Depth: depth,
		})
		depth++
	}
	hooks.OnRet = func(fn string, _ uint64, _, _ uint64, _ isa.Reg) {
		depth--
		tr.Events = append(tr.Events, Event{Kind: KindRet, Func: fn, Depth: depth})
	}
	hooks.OnRead = func(_ uint64, off int64, _ uint64, n int) {
		tr.Events = append(tr.Events, Event{Kind: KindRead, Depth: depth, FileOff: off, Count: n})
	}
	cfg.Hooks = &hooks
	tr.Outcome = vm.New(prog, cfg).Run()
	return tr
}

// Calls returns the full call sequence.
func (t *Trace) Calls() []string {
	var out []string
	for _, e := range t.Events {
		if e.Kind == KindCall {
			out = append(out, e.Func)
		}
	}
	return out
}

// LibPath returns the execution path restricted to ℓ: the sequence of
// calls to (and within) shared functions, which the PoC reform must
// preserve.
func (t *Trace) LibPath(lib map[string]bool) []string {
	var out []string
	inLib := 0
	for _, e := range t.Events {
		switch e.Kind {
		case KindCall:
			if lib[e.Func] || inLib > 0 {
				out = append(out, e.Func)
			}
			if lib[e.Func] {
				inLib++
			}
		case KindRet:
			if lib[e.Func] && inLib > 0 {
				inLib--
			}
		}
	}
	return out
}

// SamePath reports whether two traces follow the same ℓ path and, if not,
// where they first diverge.
func SamePath(a, b *Trace, lib map[string]bool) (bool, string) {
	pa, pb := a.LibPath(lib), b.LibPath(lib)
	n := len(pa)
	if len(pb) < n {
		n = len(pb)
	}
	for i := 0; i < n; i++ {
		if pa[i] != pb[i] {
			return false, fmt.Sprintf("step %d: %s vs %s", i, pa[i], pb[i])
		}
	}
	if len(pa) != len(pb) {
		return false, fmt.Sprintf("lengths differ: %d vs %d", len(pa), len(pb))
	}
	return true, ""
}

// String renders the trace as an indented call tree with read annotations.
func (t *Trace) String() string {
	var sb strings.Builder
	for _, e := range t.Events {
		indent := strings.Repeat("  ", e.Depth)
		switch e.Kind {
		case KindCall:
			fmt.Fprintf(&sb, "%scall %s%v\n", indent, e.Func, e.Args)
		case KindRet:
			fmt.Fprintf(&sb, "%sret  %s\n", indent, e.Func)
		case KindRead:
			fmt.Fprintf(&sb, "%sread [%d..%d)\n", indent, e.FileOff, e.FileOff+int64(e.Count))
		}
	}
	if t.Outcome != nil {
		fmt.Fprintf(&sb, "=> %s\n", t.Outcome)
	}
	return sb.String()
}
