package fileformat_test

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	ff "octopocs/internal/fileformat"
)

func TestMJPGRoundTrip(t *testing.T) {
	check := func(w, h uint16, q byte, npix uint8) bool {
		in := &ff.MJPG{Width: w, Height: h, Quality: q}
		if npix > 0 {
			in.Pixels = make([]byte, npix)
			for i := range in.Pixels {
				in.Pixels[i] = byte(i * 7)
			}
		}
		out, err := ff.ParseMJPG(in.Encode())
		return err == nil && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestMTJ0RoundTrip(t *testing.T) {
	check := func(w, h uint16, bpp byte) bool {
		in := &ff.MTJ0{Width: w, Height: h, BPP: bpp}
		out, err := ff.ParseMTJ0(in.Encode())
		return err == nil && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestMAVIRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := &ff.MAVI{DeclaredSize: uint16(rng.Intn(1 << 16))}
		overflow := false
		for i := 0; i < rng.Intn(4); i++ {
			n := rng.Intn(12)
			if n > 8 {
				overflow = true
			}
			frame := make([]uint32, n)
			for j := range frame {
				frame[j] = rng.Uint32()
			}
			in.Frames = append(in.Frames, frame)
		}
		out, gotOverflow, err := ff.ParseMAVI(in.Encode())
		if err != nil || gotOverflow != overflow {
			return false
		}
		if len(out.Frames) != len(in.Frames) {
			return false
		}
		for i := range in.Frames {
			if len(in.Frames[i]) != len(out.Frames[i]) {
				return false
			}
			for j := range in.Frames[i] {
				if in.Frames[i][j] != out.Frames[i][j] {
					return false
				}
			}
		}
		return out.DeclaredSize == in.DeclaredSize
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMTIFRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := &ff.MTIF{}
		for i := 0; i < rng.Intn(5); i++ {
			if rng.Intn(3) == 0 {
				payload := make([]byte, rng.Intn(20))
				rng.Read(payload)
				if len(payload) == 0 {
					payload = nil
				}
				in.Entries = append(in.Entries, ff.IFDEntry{Tag: ff.PredictorTag, Payload: payload})
			} else {
				tag := uint16(rng.Intn(0x200))
				if tag == ff.PredictorTag {
					tag++
				}
				in.Entries = append(in.Entries, ff.IFDEntry{Tag: tag, Value: uint16(rng.Intn(1 << 16))})
			}
		}
		out, err := ff.ParseMTIF(in.Encode())
		return err == nil && reflect.DeepEqual(in.Entries, out.Entries)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMGIFRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, dialect := range []struct{ cp, flags bool }{{false, false}, {true, true}} {
			in := &ff.MGIF{Version: byte(rng.Intn(256)), Trailer: true, Checkpoints: dialect.cp}
			if dialect.flags {
				in.OptionFlags = make([]byte, 16)
				rng.Read(in.OptionFlags)
			}
			for i := 0; i < rng.Intn(4); i++ {
				if rng.Intn(2) == 0 {
					data := make([]byte, rng.Intn(8))
					rng.Read(data)
					if len(data) == 0 {
						data = nil
					}
					in.Blocks = append(in.Blocks, ff.GIFExtension{Data: data})
				} else {
					codes := make([]uint16, rng.Intn(6))
					for j := range codes {
						codes[j] = uint16(rng.Intn(1 << 16))
					}
					if len(codes) == 0 {
						codes = nil
					}
					in.Blocks = append(in.Blocks, ff.GIFImage{Codes: codes})
				}
			}
			out, err := ff.ParseMGIF(in.Encode(), dialect.cp, dialect.flags)
			if err != nil || !reflect.DeepEqual(in.Blocks, out.Blocks) ||
				in.Version != out.Version || !out.Trailer ||
				!bytes.Equal(in.OptionFlags, out.OptionFlags) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPDFObjectsRoundTrip(t *testing.T) {
	in := &ff.PDFObjects{Version: '3', Objects: [][]byte{[]byte("abc"), {}, []byte("xyzw")}}
	out, err := ff.ParsePDFObjects(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Version != '3' || len(out.Objects) != 3 || string(out.Objects[2]) != "xyzw" {
		t.Errorf("round trip = %+v", out)
	}
}

func TestJ2KRoundTrip(t *testing.T) {
	check := func(w, h uint16, ncomp uint8) bool {
		in := &ff.J2K{Width: w, Height: h, Components: make([]byte, ncomp%10)}
		for i := range in.Components {
			in.Components[i] = byte(i + 1)
		}
		if len(in.Components) == 0 {
			in.Components = []byte{}
		}
		out, err := ff.ParseJ2K(in.Encode())
		if err != nil {
			return false
		}
		return out.Width == w && out.Height == h && bytes.Equal(out.Components, in.Components)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ff.ParseMJPG([]byte("NOPE")); !errors.Is(err, ff.ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	if _, err := ff.ParseMJPG([]byte("MJPG\x01")); !errors.Is(err, ff.ErrTruncated) {
		t.Errorf("truncated: %v", err)
	}
	if _, err := ff.ParseJ2K([]byte{0xFF, 0x4F}); !errors.Is(err, ff.ErrTruncated) {
		t.Errorf("short codestream: %v", err)
	}
	if _, err := ff.ParseJ2K([]byte{1, 2, 3, 4, 5, 6}); !errors.Is(err, ff.ErrBadMagic) {
		t.Errorf("non-codestream: %v", err)
	}
	if _, err := ff.ParseMGIF([]byte("MGIF\x01\x99"), false, false); err == nil {
		t.Error("unknown block tag accepted")
	}
	if _, _, err := ff.ParseMAVI([]byte("MAVI")); !errors.Is(err, ff.ErrTruncated) {
		t.Errorf("truncated MAVI: %v", err)
	}
	if _, err := ff.ParseMTIF([]byte("MTIF\x01\x3D\x01\x20")); !errors.Is(err, ff.ErrTruncated) {
		t.Errorf("truncated predictor payload: %v", err)
	}
}

func TestPDFStreamEncode(t *testing.T) {
	doc := &ff.PDFStream{
		Sections: []ff.PDFSection{
			{Kind: ff.PDFSectionSkip, Data: []byte{1, 2, 3}},
			{Kind: ff.PDFSectionImage, Data: (&ff.J2K{Width: 4, Height: 4}).Encode()},
		},
		End: true,
	}
	out := doc.Encode()
	want := append([]byte("MPDF"), 'S', 3, 1, 2, 3, 'I')
	want = append(want, (&ff.J2K{Width: 4, Height: 4}).Encode()...)
	want = append(want, 'E')
	if !bytes.Equal(out, want) {
		t.Errorf("Encode = % x, want % x", out, want)
	}
}

func TestPDFPagesEncode(t *testing.T) {
	doc := &ff.PDFPages{
		Version: '4',
		Pages: []ff.PDFPage{
			{Segments: []ff.PDFSegment{{Tag: 0x11, Data: []byte{0xDD}}}},
			{Segments: []ff.PDFSegment{ff.StuckSegment}, Unterminated: true},
		},
	}
	want := append([]byte("MPDF"), '4', 2, 0x11, 1, 0xDD, 0, 0, 0x7F, 0)
	if got := doc.Encode(); !bytes.Equal(got, want) {
		t.Errorf("Encode = % x, want % x", got, want)
	}
}

func TestMuPDFDocEncode(t *testing.T) {
	doc := &ff.MuPDFDoc{
		Objects: []ff.MuPDFObject{
			{Filter: ff.FilterFlate, Payload: []byte{9, 8}},
			{Filter: ff.FilterJPX, Payload: (&ff.J2K{Width: 1, Height: 1}).Encode()},
		},
		End: true,
	}
	out := doc.Encode()
	if string(out[:4]) != "MPDF" || len(out) != 4+16+2+1+2+2+11+1 {
		t.Errorf("Encode length = %d: % x", len(out), out)
	}
}
