package fileformat

import "fmt"

// MPDFMagic introduces every MPDF dialect.
const MPDFMagic = "MPDF"

// --- ghostscript dialect: tagged sections ------------------------------------

// PDF section tags of the ghostscript dialect.
const (
	PDFSectionSkip  = 'S'
	PDFSectionImage = 'I'
	PDFSectionEnd   = 'E'
)

// PDFSection is one section: skip sections carry opaque bytes, image
// sections carry an embedded codestream.
type PDFSection struct {
	Kind byte
	Data []byte
}

// PDFStream is the ghostscript-dialect document.
type PDFStream struct {
	Sections []PDFSection
	// End appends the terminating 'E' section.
	End bool
}

// Encode renders the document. Skip sections are length-prefixed; image
// sections embed their data raw (the decoder consumes it).
func (p *PDFStream) Encode() []byte {
	out := []byte(MPDFMagic)
	for _, s := range p.Sections {
		out = append(out, s.Kind)
		if s.Kind == PDFSectionSkip {
			out = append(out, byte(len(s.Data)))
		}
		out = append(out, s.Data...)
	}
	if p.End {
		out = append(out, PDFSectionEnd)
	}
	return out
}

// --- pdfalto dialect: version + counted objects ------------------------------

// PDFObjects is the pdfalto-dialect document: a version digit and
// length-prefixed objects.
type PDFObjects struct {
	Version byte
	Objects [][]byte
}

// Encode renders the document.
func (p *PDFObjects) Encode() []byte {
	out := []byte(MPDFMagic)
	out = append(out, p.Version)
	out = append(out, byte(len(p.Objects)))
	for _, o := range p.Objects {
		out = append(out, byte(len(o)))
		out = append(out, o...)
	}
	return out
}

// ParsePDFObjects decodes a pdfalto-dialect document.
func ParsePDFObjects(data []byte) (*PDFObjects, error) {
	r := &reader{data: data}
	if err := r.expect(MPDFMagic); err != nil {
		return nil, err
	}
	p := &PDFObjects{}
	var err error
	if p.Version, err = r.u8(); err != nil {
		return nil, err
	}
	n, err := r.u8()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(n); i++ {
		olen, err := r.u8()
		if err != nil {
			return nil, err
		}
		o, err := r.bytes(int(olen))
		if err != nil {
			return nil, err
		}
		p.Objects = append(p.Objects, append([]byte(nil), o...))
	}
	return p, nil
}

// --- pdftops dialect: version + pages of segments -----------------------------

// PDFSegment is one scanned segment; tag 0 length 0 terminates a page, tag
// 0x7F with length 0 is the non-advancing segment that hangs the scanner.
type PDFSegment struct {
	Tag  byte
	Data []byte
}

// StuckSegment is the CVE-2017-18267 trigger.
var StuckSegment = PDFSegment{Tag: 0x7F}

// PDFPage is a sequence of segments; Encode appends the terminator record.
type PDFPage struct {
	Segments []PDFSegment
	// Unterminated omits the terminator (the crashing page never ends).
	Unterminated bool
}

// PDFPages is the pdftops-dialect document.
type PDFPages struct {
	Version byte
	Pages   []PDFPage
}

// Encode renders the document.
func (p *PDFPages) Encode() []byte {
	out := []byte(MPDFMagic)
	out = append(out, p.Version)
	out = append(out, byte(len(p.Pages)))
	for _, page := range p.Pages {
		for _, s := range page.Segments {
			out = append(out, s.Tag, byte(len(s.Data)))
			out = append(out, s.Data...)
		}
		if !page.Unterminated {
			out = append(out, 0x00, 0x00)
		}
	}
	return out
}

// --- MuPDF dialect: option flags + filtered objects ---------------------------

// Filter slots of the MuPDF dialect's dispatch table.
const (
	FilterFlate = 0
	FilterASCII = 1
	FilterJPX   = 2
)

// MuPDFObject is one filtered stream object.
type MuPDFObject struct {
	Filter  byte
	Payload []byte
}

// MuPDFDoc is the MuPDF-dialect document: a 16-byte option preamble and
// filtered objects, terminated by 'E'.
type MuPDFDoc struct {
	OptionFlags [16]byte
	Objects     []MuPDFObject
	End         bool
}

// Encode renders the document. Flate payloads are length-prefixed; ASCII
// payloads are two fixed bytes; JPX payloads embed a raw codestream.
func (p *MuPDFDoc) Encode() []byte {
	out := []byte(MPDFMagic)
	out = append(out, p.OptionFlags[:]...)
	for _, o := range p.Objects {
		out = append(out, 'O', o.Filter)
		switch o.Filter {
		case FilterFlate:
			out = append(out, byte(len(o.Payload)))
		}
		out = append(out, o.Payload...)
	}
	if p.End {
		out = append(out, 'E')
	}
	return out
}

// --- J2K codestream ------------------------------------------------------------

// J2K is the JPEG2000-style codestream of the shared decoder: SOC and SIZ
// markers, dimensions, and per-component bit depths. Zero components is
// the null-dereference trigger (ghostscript-BZ697463 analog).
type J2K struct {
	Width      uint16
	Height     uint16
	Components []byte
}

// Encode renders the codestream.
func (c *J2K) Encode() []byte {
	out := []byte{0xFF, 0x4F, 0xFF, 0x51, 0x00, 0x08}
	out = append(out, byte(c.Width), byte(c.Width>>8), byte(c.Height), byte(c.Height>>8))
	out = append(out, byte(len(c.Components)))
	return append(out, c.Components...)
}

// ParseJ2K decodes a codestream.
func ParseJ2K(data []byte) (*J2K, error) {
	r := &reader{data: data}
	hdr, err := r.bytes(6)
	if err != nil {
		return nil, err
	}
	if hdr[0] != 0xFF || hdr[1] != 0x4F || hdr[2] != 0xFF || hdr[3] != 0x51 {
		return nil, fmt.Errorf("%w: not a codestream", ErrBadMagic)
	}
	if hdr[4] != 0x00 || hdr[5] != 0x08 {
		return nil, fmt.Errorf("fileformat: bad SIZ length %#x%02x", hdr[4], hdr[5])
	}
	c := &J2K{}
	dims, err := r.bytes(4)
	if err != nil {
		return nil, err
	}
	c.Width = uint16(dims[0]) | uint16(dims[1])<<8
	c.Height = uint16(dims[2]) | uint16(dims[3])<<8
	n, err := r.u8()
	if err != nil {
		return nil, err
	}
	comps, err := r.bytes(int(n))
	if err != nil {
		return nil, err
	}
	c.Components = append([]byte(nil), comps...)
	return c, nil
}
