package fileformat

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzFileFormatParse throws arbitrary bytes at every miniature-format
// parser. Two properties must hold for each: the parser never panics on any
// input (it may only return an error), and an accepted input round-trips —
// re-encoding the parsed value and parsing again reproduces it exactly.
// The parsers feed on real PoC bytes in production, so "malformed input is
// an error, never a crash" is a load-bearing contract for the whole
// pipeline.
func FuzzFileFormatParse(f *testing.F) {
	// One well-formed seed per format, plus truncations and near-misses the
	// mutator can grow from.
	f.Add((&MJPG{Width: 2, Height: 2, Quality: 9, Pixels: []byte{1, 2, 3, 4}}).Encode())
	f.Add((&MTJ0{Width: 3, Height: 1, BPP: 2}).Encode())
	f.Add((&MAVI{DeclaredSize: 8, Frames: [][]uint32{{1, 2}, {3}}}).Encode())
	f.Add((&MTIF{Entries: []IFDEntry{{Tag: 1, Value: 2}, {Tag: PredictorTag, Payload: []byte{3, 4}}}}).Encode())
	f.Add((&MGIF{Version: 1, Blocks: []GIFBlock{GIFImage{Codes: []uint16{7, 8}}}, Trailer: true}).Encode())
	f.Add((&J2K{Width: 16, Height: 16, Components: []byte{1, 2, 3}}).Encode())
	f.Add((&PDFObjects{Version: 1, Objects: [][]byte{[]byte("<< >>"), []byte("x")}}).Encode())
	f.Add([]byte("MJPG"))
	f.Add([]byte("MAVI\x00"))
	f.Add([]byte{0xFF, 0x4F, 0xFF, 0x51, 0x00, 0x08})

	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := ParseMJPG(data); err == nil {
			reparse(t, "MJPG", m, func(b []byte) (any, error) { return ParseMJPG(b) }, m.Encode())
		}
		if m, err := ParseMTJ0(data); err == nil {
			reparse(t, "MTJ0", m, func(b []byte) (any, error) { return ParseMTJ0(b) }, m.Encode())
		}
		if m, _, err := ParseMAVI(data); err == nil {
			reparse(t, "MAVI", m, func(b []byte) (any, error) { v, _, err := ParseMAVI(b); return v, err }, m.Encode())
		}
		if m, err := ParseMTIF(data); err == nil {
			reparse(t, "MTIF", m, func(b []byte) (any, error) { return ParseMTIF(b) }, m.Encode())
		}
		for _, cp := range []bool{false, true} {
			for _, opt := range []bool{false, true} {
				cp, opt := cp, opt
				if m, err := ParseMGIF(data, cp, opt); err == nil {
					reparse(t, "MGIF", m, func(b []byte) (any, error) { return ParseMGIF(b, cp, opt) }, m.Encode())
				}
			}
		}
		if m, err := ParsePDFObjects(data); err == nil {
			reparse(t, "PDF", m, func(b []byte) (any, error) { return ParsePDFObjects(b) }, m.Encode())
		}
		if m, err := ParseJ2K(data); err == nil {
			reparse(t, "J2K", m, func(b []byte) (any, error) { return ParseJ2K(b) }, m.Encode())
		}
	})
}

// reparse checks Encode∘Parse is the identity on accepted values: parsing
// the re-encoded bytes must succeed and reproduce the value, and a second
// encode must be byte-stable.
func reparse(t *testing.T, format string, parsed any, parse func([]byte) (any, error), encoded []byte) {
	t.Helper()
	again, err := parse(encoded)
	if err != nil {
		t.Fatalf("%s: re-encoded output rejected: %v", format, err)
	}
	if !reflect.DeepEqual(parsed, again) {
		t.Fatalf("%s: round-trip changed the value\n got %+v\nwant %+v", format, again, parsed)
	}
	if enc2 := encodeAny(again); !bytes.Equal(enc2, encoded) {
		t.Fatalf("%s: second encode not byte-stable", format)
	}
}

func encodeAny(v any) []byte {
	switch m := v.(type) {
	case *MJPG:
		return m.Encode()
	case *MTJ0:
		return m.Encode()
	case *MAVI:
		return m.Encode()
	case *MTIF:
		return m.Encode()
	case *MGIF:
		return m.Encode()
	case *J2K:
		return m.Encode()
	case *PDFObjects:
		return m.Encode()
	}
	return nil
}
