// Package fileformat defines typed encoders and parsers for the miniature
// file formats consumed by the corpus binaries: MJPG images, MTJ0 frames,
// MAVI containers, MTIF image directories, MGIF image files, JPEG2000-style
// codestreams, and the MPDF dialects. The corpus constructs its PoCs
// through these types, the fuzzing baselines can derive structured seeds
// from them, and property tests pin down the encode/parse round-trip.
//
// The formats are deliberately small but carry the load-bearing features
// of their real counterparts: magic numbers, length-prefixed records,
// sub-containers, dispatchable stream filters, and terminators. These are
// the malformed-file PoCs that enter the pipeline at P1 and come back
// reformed from P3.
//
// Concurrency: encoders and parsers are pure functions over caller-owned
// byte slices; there is no package-level state, so all of them are safe
// for concurrent use.
package fileformat

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated reports input ending inside a structure.
var ErrTruncated = errors.New("fileformat: truncated input")

// ErrBadMagic reports a wrong magic number.
var ErrBadMagic = errors.New("fileformat: bad magic")

// reader is a bounds-checked cursor used by the parsers.
type reader struct {
	data []byte
	pos  int
}

func (r *reader) remaining() int { return len(r.data) - r.pos }

func (r *reader) bytes(n int) ([]byte, error) {
	if r.remaining() < n {
		return nil, ErrTruncated
	}
	out := r.data[r.pos : r.pos+n]
	r.pos += n
	return out, nil
}

func (r *reader) u8() (byte, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) u16le() (uint16, error) {
	b, err := r.bytes(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *reader) expect(magic string) error {
	b, err := r.bytes(len(magic))
	if err != nil {
		return err
	}
	if string(b) != magic {
		return fmt.Errorf("%w: got %q, want %q", ErrBadMagic, b, magic)
	}
	return nil
}

// --- MJPG --------------------------------------------------------------------

// MJPGMagic introduces an MJPG image.
const MJPGMagic = "MJPG"

// MJPG is the jpeg-compressor image: dimensions, quality, and the leading
// pixel bytes the decoder prefetches.
type MJPG struct {
	Width   uint16
	Height  uint16
	Quality byte
	Pixels  []byte
}

// Encode renders the image file.
func (m *MJPG) Encode() []byte {
	out := []byte(MJPGMagic)
	out = binary.LittleEndian.AppendUint16(out, m.Width)
	out = binary.LittleEndian.AppendUint16(out, m.Height)
	out = append(out, m.Quality)
	return append(out, m.Pixels...)
}

// ParseMJPG decodes an image file.
func ParseMJPG(data []byte) (*MJPG, error) {
	r := &reader{data: data}
	if err := r.expect(MJPGMagic); err != nil {
		return nil, err
	}
	m := &MJPG{}
	var err error
	if m.Width, err = r.u16le(); err != nil {
		return nil, err
	}
	if m.Height, err = r.u16le(); err != nil {
		return nil, err
	}
	if m.Quality, err = r.u8(); err != nil {
		return nil, err
	}
	m.Pixels = append([]byte(nil), r.data[r.pos:]...)
	return m, nil
}

// --- MTJ0 --------------------------------------------------------------------

// MTJ0Magic introduces a tjbench frame.
const MTJ0Magic = "MTJ0"

// MTJ0 is the tjbench frame header whose size computation overflows for
// large dimensions.
type MTJ0 struct {
	Width  uint16
	Height uint16
	BPP    byte
}

// Encode renders the frame file.
func (m *MTJ0) Encode() []byte {
	out := []byte(MTJ0Magic)
	out = binary.LittleEndian.AppendUint16(out, m.Width)
	out = binary.LittleEndian.AppendUint16(out, m.Height)
	return append(out, m.BPP)
}

// ParseMTJ0 decodes a frame file.
func ParseMTJ0(data []byte) (*MTJ0, error) {
	r := &reader{data: data}
	if err := r.expect(MTJ0Magic); err != nil {
		return nil, err
	}
	m := &MTJ0{}
	var err error
	if m.Width, err = r.u16le(); err != nil {
		return nil, err
	}
	if m.Height, err = r.u16le(); err != nil {
		return nil, err
	}
	if m.BPP, err = r.u8(); err != nil {
		return nil, err
	}
	return m, nil
}

// --- MAVI --------------------------------------------------------------------

// MAVIMagic introduces an MAVI container.
const MAVIMagic = "MAVI"

// MAVI is the avconv/ffmpeg container: a declared payload size and frames
// of 32-bit samples.
type MAVI struct {
	DeclaredSize uint16
	Frames       [][]uint32
}

// Encode renders the container. Each frame is a u8 sample count followed
// by the samples.
func (m *MAVI) Encode() []byte {
	out := []byte(MAVIMagic)
	out = binary.LittleEndian.AppendUint16(out, m.DeclaredSize)
	out = append(out, byte(len(m.Frames)))
	for _, frame := range m.Frames {
		out = append(out, byte(len(frame)))
		for _, s := range frame {
			out = binary.LittleEndian.AppendUint32(out, s)
		}
	}
	return out
}

// ParseMAVI decodes a container. Frames whose declared sample count
// exceeds the decoder's 8-slot table are precisely the crashing inputs, so
// the parser accepts them but reports the overflow.
func ParseMAVI(data []byte) (*MAVI, bool, error) {
	r := &reader{data: data}
	if err := r.expect(MAVIMagic); err != nil {
		return nil, false, err
	}
	m := &MAVI{}
	var err error
	if m.DeclaredSize, err = r.u16le(); err != nil {
		return nil, false, err
	}
	nframes, err := r.u8()
	if err != nil {
		return nil, false, err
	}
	overflow := false
	for i := 0; i < int(nframes); i++ {
		cnt, err := r.u8()
		if err != nil {
			return nil, false, err
		}
		if cnt > 8 {
			overflow = true
		}
		frame := make([]uint32, 0, cnt)
		for j := 0; j < int(cnt); j++ {
			b, err := r.bytes(4)
			if err != nil {
				return m, overflow, err
			}
			frame = append(frame, binary.LittleEndian.Uint32(b))
		}
		m.Frames = append(m.Frames, frame)
	}
	return m, overflow, nil
}

// --- MTIF --------------------------------------------------------------------

// MTIFMagic introduces an image file directory.
const MTIFMagic = "MTIF"

// PredictorTag is the tag whose payload the shared reader copies into a
// fixed 8-byte buffer (the CVE-2016-10095 analog).
const PredictorTag = 0x13D

// IFDEntry is one directory entry: ordinary tags carry a 16-bit value,
// the predictor tag carries a length-prefixed payload.
type IFDEntry struct {
	Tag     uint16
	Value   uint16 // ordinary tags
	Payload []byte // PredictorTag only
}

// MTIF is a directory of entries.
type MTIF struct {
	Entries []IFDEntry
}

// Encode renders the directory.
func (m *MTIF) Encode() []byte {
	out := []byte(MTIFMagic)
	out = append(out, byte(len(m.Entries)))
	for _, e := range m.Entries {
		out = binary.LittleEndian.AppendUint16(out, e.Tag)
		if e.Tag == PredictorTag {
			out = append(out, byte(len(e.Payload)))
			out = append(out, e.Payload...)
		} else {
			out = binary.LittleEndian.AppendUint16(out, e.Value)
		}
	}
	return out
}

// ParseMTIF decodes a directory.
func ParseMTIF(data []byte) (*MTIF, error) {
	r := &reader{data: data}
	if err := r.expect(MTIFMagic); err != nil {
		return nil, err
	}
	n, err := r.u8()
	if err != nil {
		return nil, err
	}
	m := &MTIF{}
	for i := 0; i < int(n); i++ {
		var e IFDEntry
		if e.Tag, err = r.u16le(); err != nil {
			return nil, err
		}
		if e.Tag == PredictorTag {
			plen, err := r.u8()
			if err != nil {
				return nil, err
			}
			payload, err := r.bytes(int(plen))
			if err != nil {
				return nil, err
			}
			e.Payload = append([]byte(nil), payload...)
		} else if e.Value, err = r.u16le(); err != nil {
			return nil, err
		}
		m.Entries = append(m.Entries, e)
	}
	return m, nil
}
