package fileformat

import (
	"encoding/binary"
	"fmt"
)

// MGIFMagic introduces an MGIF image file.
const MGIFMagic = "MGIF"

// GIF block tags.
const (
	GIFImageTag      = 0x2C
	GIFExtensionTag  = 0x21
	GIFTrailerTag    = 0x3B
	GIFCheckpointTag = 0x3A
)

// GIFBlock is one block of an MGIF file.
type GIFBlock interface {
	encodeInto(out []byte, checkpoints bool) []byte
}

// GIFImage is an image block: 16-bit codes copied into the decoder's
// 16-entry table (so more than 16 codes overflow it).
type GIFImage struct {
	Codes []uint16
}

func (g GIFImage) encodeInto(out []byte, checkpoints bool) []byte {
	out = append(out, GIFImageTag, byte(len(g.Codes)))
	for _, c := range g.Codes {
		out = binary.LittleEndian.AppendUint16(out, c)
	}
	if checkpoints {
		out = append(out, GIFCheckpointTag)
	}
	return out
}

// GIFExtension is a skippable extension block.
type GIFExtension struct {
	Data []byte
}

func (g GIFExtension) encodeInto(out []byte, _ bool) []byte {
	out = append(out, GIFExtensionTag, byte(len(g.Data)))
	return append(out, g.Data...)
}

// MGIF is a complete image file.
type MGIF struct {
	Version byte
	Blocks  []GIFBlock
	// Trailer appends the 0x3B trailer tag after the blocks.
	Trailer bool
	// Checkpoints emits the artificial clone's dialect: a checkpoint
	// byte after every image block.
	Checkpoints bool
	// OptionFlags, when non-nil, is the 16-byte option preamble of the
	// artificial clone's dialect, emitted after the version byte.
	OptionFlags []byte
}

// Encode renders the file.
func (m *MGIF) Encode() []byte {
	out := []byte(MGIFMagic)
	out = append(out, m.Version)
	out = append(out, m.OptionFlags...)
	for _, b := range m.Blocks {
		out = b.encodeInto(out, m.Checkpoints)
	}
	if m.Trailer {
		out = append(out, GIFTrailerTag)
	}
	return out
}

// ParseMGIF decodes a file in the given dialect (checkpoints and a
// 16-byte option preamble for the artificial clone).
func ParseMGIF(data []byte, checkpoints bool, optionFlags bool) (*MGIF, error) {
	r := &reader{data: data}
	if err := r.expect(MGIFMagic); err != nil {
		return nil, err
	}
	m := &MGIF{Checkpoints: checkpoints}
	var err error
	if m.Version, err = r.u8(); err != nil {
		return nil, err
	}
	if optionFlags {
		flags, err := r.bytes(16)
		if err != nil {
			return nil, err
		}
		m.OptionFlags = append([]byte(nil), flags...)
	}
	for r.remaining() > 0 {
		tag, err := r.u8()
		if err != nil {
			return nil, err
		}
		switch tag {
		case GIFTrailerTag:
			m.Trailer = true
			return m, nil
		case GIFExtensionTag:
			n, err := r.u8()
			if err != nil {
				return nil, err
			}
			data, err := r.bytes(int(n))
			if err != nil {
				return nil, err
			}
			m.Blocks = append(m.Blocks, GIFExtension{Data: append([]byte(nil), data...)})
		case GIFImageTag:
			n, err := r.u8()
			if err != nil {
				return nil, err
			}
			var img GIFImage
			for i := 0; i < int(n); i++ {
				b, err := r.bytes(2)
				if err != nil {
					return nil, err
				}
				img.Codes = append(img.Codes, binary.LittleEndian.Uint16(b))
			}
			m.Blocks = append(m.Blocks, img)
			if checkpoints {
				cp, err := r.u8()
				if err != nil {
					return nil, err
				}
				if cp != GIFCheckpointTag {
					return nil, fmt.Errorf("fileformat: bad checkpoint byte %#x", cp)
				}
			}
		default:
			return nil, fmt.Errorf("fileformat: unknown MGIF block tag %#x", tag)
		}
	}
	return m, nil
}
